package experiments

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"cool/internal/core"
	"cool/internal/energy"
	"cool/internal/geometry"
	"cool/internal/parallel"
	"cool/internal/stats"
	"cool/internal/submodular"
	"cool/internal/wsn"
)

// This file is the memory-layout benchmark behind `coolbench -fig
// memlayout`: the flat (CSR + bitset + bulk-marginal) oracle layout
// against a faithful replica of the previous layout (per-sensor
// slice-of-struct adjacency, map-backed targets, per-call marginals),
// driving the same dirty-slot-cached greedy planner over the same
// deployments. Schedules must come out bit-identical; only time and
// allocation behaviour may differ.

// legacyTargetProb mirrors the old layout's per-sensor adjacency entry.
type legacyTargetProb struct {
	target int
	q      float64 // 1 - p
}

// legacyDetectionUtility replicates the pre-flat memory layout: one
// independently allocated []legacyTargetProb per sensor and one
// map[int]float64 per target. The arithmetic is byte-for-byte the old
// oracle's, so its greedy schedules are bit-identical to the flat
// layout's and any timing difference is attributable to layout alone.
type legacyDetectionUtility struct {
	n        int
	weights  []float64
	bySensor [][]legacyTargetProb
	byTarget []map[int]float64
}

func newLegacyDetectionUtility(n int, targets []submodular.DetectionTarget) *legacyDetectionUtility {
	u := &legacyDetectionUtility{
		n:        n,
		weights:  make([]float64, len(targets)),
		bySensor: make([][]legacyTargetProb, n),
		byTarget: make([]map[int]float64, len(targets)),
	}
	for i, tgt := range targets {
		u.weights[i] = tgt.Weight
		u.byTarget[i] = make(map[int]float64, len(tgt.Probs))
		for v, p := range tgt.Probs {
			u.byTarget[i][v] = p
			u.bySensor[v] = append(u.bySensor[v], legacyTargetProb{target: i, q: 1 - p})
		}
	}
	return u
}

func (u *legacyDetectionUtility) GroundSize() int { return u.n }

func (u *legacyDetectionUtility) Eval(set []int) float64 {
	seen := make(map[int]bool, len(set))
	surv := make([]float64, len(u.weights))
	for i := range surv {
		surv[i] = 1
	}
	for _, v := range set {
		if seen[v] {
			continue
		}
		seen[v] = true
		for _, tp := range u.bySensor[v] {
			surv[tp.target] *= tp.q
		}
	}
	var total float64
	for i, s := range surv {
		total += u.weights[i] * (1 - s)
	}
	return total
}

func (u *legacyDetectionUtility) oracle() *legacyDetectionOracle {
	o := &legacyDetectionOracle{
		u:     u,
		in:    make([]bool, u.n),
		surv:  make([]float64, len(u.weights)),
		zeros: make([]int, len(u.weights)),
	}
	for i := range o.surv {
		o.surv[i] = 1
	}
	return o
}

// legacyDetectionOracle is the old per-call oracle: boolean-slice
// membership, per-target survival products, effSurv branch on every
// edge, no bulk marginals. It deliberately does NOT implement
// submodular.BulkGainer/BulkLosser, so the greedy engine exercises the
// per-element refresh path — exactly the engine the previous PR shipped.
type legacyDetectionOracle struct {
	u     *legacyDetectionUtility
	in    []bool
	surv  []float64
	zeros []int
	value float64
}

var _ submodular.RemovalOracle = (*legacyDetectionOracle)(nil)

func (o *legacyDetectionOracle) effSurv(t int) float64 {
	if o.zeros[t] > 0 {
		return 0
	}
	return o.surv[t]
}

func (o *legacyDetectionOracle) Value() float64 { return o.value }

func (o *legacyDetectionOracle) Contains(v int) bool { return o.in[v] }

func (o *legacyDetectionOracle) Gain(v int) float64 {
	if o.in[v] {
		return 0
	}
	var delta float64
	for _, tp := range o.u.bySensor[v] {
		s := o.effSurv(tp.target)
		delta += o.u.weights[tp.target] * (s - s*tp.q)
	}
	return delta
}

func (o *legacyDetectionOracle) Add(v int) {
	if o.in[v] {
		return
	}
	o.in[v] = true
	for _, tp := range o.u.bySensor[v] {
		t := tp.target
		s := o.effSurv(t)
		if tp.q == 0 {
			o.zeros[t]++
		} else {
			o.surv[t] *= tp.q
		}
		o.value += o.u.weights[t] * (s - o.effSurv(t))
	}
}

func (o *legacyDetectionOracle) Loss(v int) float64 {
	if !o.in[v] {
		return 0
	}
	var delta float64
	for _, tp := range o.u.bySensor[v] {
		t := tp.target
		cur := o.effSurv(t)
		var without float64
		if tp.q == 0 {
			if o.zeros[t] > 1 {
				without = 0
			} else {
				without = o.surv[t]
			}
		} else {
			if o.zeros[t] > 0 {
				without = 0
			} else {
				without = o.surv[t] / tp.q
			}
		}
		delta += o.u.weights[t] * (without - cur)
	}
	return delta
}

func (o *legacyDetectionOracle) Remove(v int) {
	if !o.in[v] {
		return
	}
	o.in[v] = false
	for _, tp := range o.u.bySensor[v] {
		t := tp.target
		before := o.effSurv(t)
		if tp.q == 0 {
			o.zeros[t]--
		} else {
			o.surv[t] /= tp.q
		}
		o.value -= o.u.weights[t] * (o.effSurv(t) - before)
	}
}

func (o *legacyDetectionOracle) ConcurrentReadSafe() bool { return true }

func (o *legacyDetectionOracle) Clone() submodular.Oracle {
	return &legacyDetectionOracle{
		u:     o.u,
		in:    append([]bool(nil), o.in...),
		surv:  append([]float64(nil), o.surv...),
		zeros: append([]int(nil), o.zeros...),
		value: o.value,
	}
}

// legacyGreedyPlacement replicates the previous PR's cached greedy
// engine verbatim: a dirty-slot marginal cache refreshed with
// per-element Gain queries (no bulk marginals existed) and a full
// O(n·T) argmax rescan every step (no per-column candidate tracking
// existed). Together with legacyDetectionOracle it is the "old" side of
// the benchmark — engine and layout exactly as previously shipped.
func legacyGreedyPlacement(in core.Instance) ([]int, error) {
	T := in.Period.Slots()
	n := in.N
	oracles := make([]submodular.RemovalOracle, T)
	for t := range oracles {
		oracles[t] = in.Factory()
	}
	assign := make([]int, n)
	for v := range assign {
		assign[v] = -1
	}
	vals := make([]float64, n*T) // vals[t*n+v], the old cache layout
	fill := func(t int) {
		base := t * n
		for v := 0; v < n; v++ {
			if assign[v] < 0 {
				vals[base+v] = oracles[t].Gain(v)
			}
		}
	}
	for t := 0; t < T; t++ {
		fill(t)
	}
	for step := 0; step < n; step++ {
		bestV, bestT, bestGain := -1, -1, -1.0
		for v := 0; v < n; v++ {
			if assign[v] >= 0 {
				continue
			}
			for t := 0; t < T; t++ {
				if g := vals[t*n+v]; g > bestGain {
					bestV, bestT, bestGain = v, t, g
				}
			}
		}
		if bestV < 0 {
			return nil, fmt.Errorf("experiments: legacy greedy found no candidate at step %d", step)
		}
		oracles[bestT].Add(bestV)
		assign[bestV] = bestT
		fill(bestT)
	}
	return assign, nil
}

// MemLayoutConfig parameterizes the memory-layout benchmark.
type MemLayoutConfig struct {
	// Sizes lists the sensor counts to benchmark (default 240, 1000,
	// 4000). Targets are Sizes[i]/10.
	Sizes []int
	// FieldSide, Range, DetectP mirror the Figure-9 workload (defaults
	// 500, 100, 0.4).
	FieldSide, Range, DetectP float64
	// Rho is the charging ratio (default 7 → T = 8 slots).
	Rho float64
	// Iters is the timing repetitions per engine at each size; the
	// minimum is reported. Sizes above 2000 always use a single
	// iteration (default 3).
	Iters int
	// Workers bounds the parallel determinism cross-check (0 or
	// negative selects runtime.NumCPU).
	Workers int
	// Seed drives deployment randomness.
	Seed uint64
}

func (c *MemLayoutConfig) defaults() error {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{240, 1000, 4000}
	}
	if c.FieldSide == 0 {
		c.FieldSide = 500
	}
	if c.Range == 0 {
		c.Range = 100
	}
	if c.DetectP == 0 {
		c.DetectP = 0.4
	}
	if c.Rho == 0 {
		c.Rho = 7
	}
	if c.Iters == 0 {
		c.Iters = 3
	}
	for _, n := range c.Sizes {
		if n < 20 {
			return fmt.Errorf("experiments: memlayout size %d too small", n)
		}
	}
	if c.Iters < 1 || c.DetectP < 0 || c.DetectP > 1 {
		return fmt.Errorf("experiments: invalid memlayout config %+v", *c)
	}
	if c.Rho < 1 {
		return fmt.Errorf("experiments: memlayout bench requires a placement-mode rho (>= 1), got %v", c.Rho)
	}
	return nil
}

// MemLayoutCase is the old-vs-new measurement at one workload size.
type MemLayoutCase struct {
	Sensors int `json:"sensors"`
	Targets int `json:"targets"`
	Slots   int `json:"slots"`
	// OldNsOp / NewNsOp time one full greedy planner run (best of
	// Iters) on the legacy and flat layouts.
	OldNsOp int64 `json:"old_ns_op"`
	NewNsOp int64 `json:"new_ns_op"`
	// Speedup is OldNsOp / NewNsOp.
	Speedup float64 `json:"speedup"`
	// AllocsPerOp / BytesPerOp count heap allocations and bytes for one
	// planner run (runtime.MemStats deltas), including oracle
	// construction.
	OldAllocsPerOp uint64 `json:"old_allocs_per_op"`
	NewAllocsPerOp uint64 `json:"new_allocs_per_op"`
	OldBytesPerOp  uint64 `json:"old_bytes_per_op"`
	NewBytesPerOp  uint64 `json:"new_bytes_per_op"`
	// GainAllocsPerOp is the flat oracle's per-Gain-query allocation
	// count (the tentpole's zero-alloc gate).
	GainAllocsPerOp float64 `json:"gain_allocs_per_op"`
	// SchedulesIdentical records that legacy greedy, flat greedy, flat
	// lazy greedy and flat parallel greedy all returned the same
	// assignment.
	SchedulesIdentical bool `json:"schedules_identical"`
}

// MemLayoutResult is the machine-readable summary coolbench writes to
// BENCH_memlayout.json.
type MemLayoutResult struct {
	Workers int             `json:"workers"`
	Cases   []MemLayoutCase `json:"cases"`
}

// buildDetectionTargets replicates wsn.BuildDetectionUtility's target
// assembly so the legacy and flat utilities are built from the same
// spec.
func buildDetectionTargets(net *wsn.Network, model wsn.DetectionModel) ([]submodular.DetectionTarget, error) {
	targets := make([]submodular.DetectionTarget, net.NumTargets())
	for j := range targets {
		t := net.Target(j)
		probs := make(map[int]float64, len(net.Coverers(j)))
		for _, i := range net.Coverers(j) {
			p := model.Prob(net.Sensor(i), t)
			if p < 0 || p > 1 || math.IsNaN(p) {
				return nil, fmt.Errorf("experiments: model returned %v for sensor %d target %d", p, i, j)
			}
			probs[i] = p
		}
		targets[j] = submodular.DetectionTarget{Weight: t.Weight, Probs: probs}
	}
	return targets, nil
}

// measureRun times and meters one planner execution: wall time plus
// Mallocs/TotalAlloc deltas from runtime.MemStats (cumulative counters,
// unaffected by intervening GCs).
func measureRun(run func() error) (int64, uint64, uint64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	if err := run(); err != nil {
		return 0, 0, 0, err
	}
	ns := time.Since(t0).Nanoseconds()
	runtime.ReadMemStats(&after)
	return ns, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
}

// MemLayoutBench runs the old-vs-new layout comparison across the
// configured sizes and returns both a renderable Figure and the raw
// machine-readable result.
func MemLayoutBench(cfg MemLayoutConfig) (*Figure, *MemLayoutResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, nil, err
	}
	period, err := energy.PeriodFromRho(cfg.Rho)
	if err != nil {
		return nil, nil, err
	}
	workers := parallel.Workers(cfg.Workers)
	res := &MemLayoutResult{Workers: workers}
	fig := &Figure{
		ID:     "memlayout-bench",
		Title:  fmt.Sprintf("Oracle memory layout: flat (CSR+bitset+bulk) vs legacy (slices+maps), T=%d", period.Slots()),
		XLabel: "sensors",
		YLabel: "greedy planner milliseconds",
	}
	oldSeries := Series{Label: "legacy-layout"}
	newSeries := Series{Label: "flat-layout"}

	for _, n := range cfg.Sizes {
		m := n / 10
		net, err := wsn.Deploy(wsn.DeployConfig{
			Field:   geometry.NewRect(geometry.Point{}, geometry.Point{X: cfg.FieldSide, Y: cfg.FieldSide}),
			Sensors: n,
			Targets: m,
			Range:   cfg.Range,
		}, stats.NewRNG(cfg.Seed+uint64(n)))
		if err != nil {
			return nil, nil, err
		}
		targets, err := buildDetectionTargets(net, wsn.FixedProb(cfg.DetectP))
		if err != nil {
			return nil, nil, err
		}
		legacy := newLegacyDetectionUtility(n, targets)
		flat, err := submodular.NewDetectionUtility(n, targets)
		if err != nil {
			return nil, nil, err
		}
		oldIn := core.Instance{
			N:       n,
			Period:  period,
			Factory: func() submodular.RemovalOracle { return legacy.oracle() },
		}
		newIn := core.Instance{
			N:       n,
			Period:  period,
			Factory: func() submodular.RemovalOracle { return flat.Oracle() },
		}
		iters := cfg.Iters
		if n > 2000 {
			iters = 1
		}

		// One untimed warmup of each engine so cold caches, lazy page
		// faults and JIT-like branch-predictor effects do not bias the
		// first timed iteration (quick runs use Iters = 1).
		if _, err := legacyGreedyPlacement(oldIn); err != nil {
			return nil, nil, err
		}
		if _, err := core.Greedy(newIn); err != nil {
			return nil, nil, err
		}

		var oldAssign []int
		var newSched *core.Schedule
		var oldNs, newNs int64 = -1, -1
		var oldAllocs, newAllocs, oldBytes, newBytes uint64
		for i := 0; i < iters; i++ {
			ns, allocs, bytes, err := measureRun(func() error {
				oldAssign, err = legacyGreedyPlacement(oldIn)
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			if oldNs < 0 || ns < oldNs {
				oldNs, oldAllocs, oldBytes = ns, allocs, bytes
			}
			ns, allocs, bytes, err = measureRun(func() error {
				newSched, err = core.Greedy(newIn)
				return err
			})
			if err != nil {
				return nil, nil, err
			}
			if newNs < 0 || ns < newNs {
				newNs, newAllocs, newBytes = ns, allocs, bytes
			}
		}

		// Determinism cross-check: legacy vs flat, plus the flat lazy
		// and parallel engines.
		lazySched, err := core.LazyGreedy(newIn)
		if err != nil {
			return nil, nil, err
		}
		parSched, err := core.ParallelGreedy(newIn, workers)
		if err != nil {
			return nil, nil, err
		}
		identical := assignEqual(oldAssign, newSched.Assignment()) &&
			assignEqual(oldAssign, lazySched.Assignment()) &&
			assignEqual(oldAssign, parSched.Assignment())

		// Per-query allocation gate on a seeded flat oracle.
		probe := flat.Oracle()
		for v := 0; v < n; v += 3 {
			probe.Add(v)
		}
		gainAllocs := testing.AllocsPerRun(100, func() {
			for v := 0; v < n; v += 7 {
				_ = probe.Gain(v)
			}
		})

		c := MemLayoutCase{
			Sensors:            n,
			Targets:            m,
			Slots:              period.Slots(),
			OldNsOp:            oldNs,
			NewNsOp:            newNs,
			Speedup:            float64(oldNs) / float64(newNs),
			OldAllocsPerOp:     oldAllocs,
			NewAllocsPerOp:     newAllocs,
			OldBytesPerOp:      oldBytes,
			NewBytesPerOp:      newBytes,
			GainAllocsPerOp:    gainAllocs,
			SchedulesIdentical: identical,
		}
		res.Cases = append(res.Cases, c)
		oldSeries.X = append(oldSeries.X, float64(n))
		oldSeries.Y = append(oldSeries.Y, float64(oldNs)/1e6)
		newSeries.X = append(newSeries.X, float64(n))
		newSeries.Y = append(newSeries.Y, float64(newNs)/1e6)
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"n=%d m=%d: %.2fx speedup, allocs %d→%d, bytes %d→%d, gain allocs %.0f, identical=%v",
			n, m, c.Speedup, oldAllocs, newAllocs, oldBytes, newBytes, gainAllocs, identical))
	}
	fig.Series = []Series{oldSeries, newSeries}
	return fig, res, nil
}
