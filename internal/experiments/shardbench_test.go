package experiments

import "testing"

// shardQuickConfig is the CI-sized shard bench: small enough to finish
// in seconds, real enough that every verdict field (k1_identical,
// gap_within_bound, trace_identical) is exercised by an actual
// decomposition.
func shardQuickConfig() ShardConfig {
	return ShardConfig{
		PlanSizes:  []int{1200},
		PlanKs:     []int{1, 2, 4},
		BigSensors: -1,
		NetNodes:   2000,
		NetKs:      []int{1, 4},
		NetTicks:   2,
		Seed:       7,
	}
}

// TestShardBenchQuick gates the bench's own verdicts: the k = 1 sharded
// plan must be bit-identical to the flat engine, every sharded case
// must stay within the utility-gap bound, and the sharded radio trace
// must match the flat core exactly.
func TestShardBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("shard bench quick run skipped in -short mode")
	}
	fig, res, err := ShardBench(shardQuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if fig == nil || len(fig.Series) == 0 {
		t.Fatal("no figure series produced")
	}
	if len(res.PlanGroups) == 0 || len(res.NetCases) == 0 {
		t.Fatalf("missing groups: %d plan, %d net", len(res.PlanGroups), len(res.NetCases))
	}
	for _, g := range res.PlanGroups {
		if !g.K1Identical {
			t.Errorf("plan n=%d engine=%s: k=1 not bit-identical to the flat engine", g.Sensors, g.Engine)
		}
		sawDecomposition := false
		for _, c := range g.Cases {
			if !c.GapWithinBound {
				t.Errorf("plan n=%d k=%d: gap %.3f%% beyond %.1f%%", g.Sensors, c.K, c.GapPct, ShardGapBoundPct)
			}
			if c.K == 1 && c.GapPct != 0 {
				t.Errorf("plan n=%d: k=1 gap %.3f%% != 0", g.Sensors, c.GapPct)
			}
			if c.EffectiveK > 1 {
				sawDecomposition = true
			}
		}
		if !sawDecomposition {
			t.Errorf("plan n=%d: no case produced a real decomposition", g.Sensors)
		}
	}
	for _, c := range res.NetCases {
		if !c.TraceIdentical {
			t.Errorf("net k=%d: delivery trace diverges from the flat core", c.K)
		}
		if c.Sent == 0 || c.Delivered == 0 {
			t.Errorf("net k=%d: empty traffic (sent %d, delivered %d)", c.K, c.Sent, c.Delivered)
		}
	}
}
