package experiments

import (
	"fmt"

	"cool/internal/core"
	"cool/internal/energy"
	"cool/internal/parallel"
	"cool/internal/sim"
	"cool/internal/stats"
	"cool/internal/submodular"
)

// Fig8Config parameterizes the fixed-target utility experiment.
type Fig8Config struct {
	// SensorCounts is the X axis (default 20..100 step 20, the paper's
	// sweep).
	SensorCounts []int
	// Targets is the number of co-located all-covered targets m for the
	// subfigure (1..4 in the paper).
	Targets int
	// DetectP is the per-sensor detection probability (paper: 0.4).
	DetectP float64
	// Rho is the charging ratio (paper: 3, from Tr=45min/Td=15min).
	Rho float64
	// ExactUpTo additionally computes the exact optimum for sensor
	// counts up to this bound (0 disables; the paper "enumerates all
	// possible schedulings" for its optimum reference).
	ExactUpTo int
	// SimulateDays, when positive, adds a "simulated-30day" series: the
	// greedy schedule executed through the slotted simulator over that
	// many 12-hour days with a mixed-weather sequence (sunny /
	// partly-cloudy / overcast), the regime the paper's real testbed
	// ran in. Imperfect weather delays recharges and denies scheduled
	// activations, reproducing the gap between the paper's measured
	// 0.983408764 and its 0.999380 bound at n=100.
	SimulateDays int
	// Seed drives the simulated weather sequence.
	Seed uint64
	// Workers bounds the worker pool for the per-n sweep (0 or negative
	// selects runtime.NumCPU).
	Workers int
}

func (c *Fig8Config) defaults() error {
	if len(c.SensorCounts) == 0 {
		c.SensorCounts = []int{20, 40, 60, 80, 100}
	}
	if c.Targets == 0 {
		c.Targets = 1
	}
	if c.Targets < 0 {
		return fmt.Errorf("experiments: negative target count %d", c.Targets)
	}
	if c.DetectP == 0 {
		c.DetectP = 0.4
	}
	if c.DetectP < 0 || c.DetectP > 1 {
		return fmt.Errorf("experiments: detection probability %v outside [0,1]", c.DetectP)
	}
	if c.Rho == 0 {
		c.Rho = 3
	}
	return nil
}

// fig8Utility builds the identical-coverage multi-target utility: every
// sensor covers every target with probability p.
func fig8Utility(n, m int, p float64) (*submodular.DetectionUtility, error) {
	targets := make([]submodular.DetectionTarget, m)
	for j := range targets {
		probs := make(map[int]float64, n)
		for v := 0; v < n; v++ {
			probs[v] = p
		}
		targets[j] = submodular.DetectionTarget{Weight: 1, Probs: probs}
	}
	return submodular.NewDetectionUtility(n, targets)
}

// Fig8 reproduces one subfigure of Figure 8: average utility per target
// per slot vs the number of sensors, for the greedy schedule against
// the paper's closed-form upper bound U* = 1 − (1−p)^⌈n/T⌉ (and the
// exact optimum where enumeration is feasible).
//
// Shape to reproduce: the greedy curve hugs the bound from below and
// both approach 1 as n grows; with more targets the curves only get
// closer to 1 (more sensors per slot to share).
func Fig8(cfg Fig8Config) (*Figure, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	period, err := energy.PeriodFromRho(cfg.Rho)
	if err != nil {
		return nil, err
	}
	T := period.Slots()

	// Each sensor count is an independent point; compute them on the
	// shared worker pool into index-addressed slots, then assemble the
	// series strictly in sweep order so the figure is identical for
	// every worker count.
	type fig8Point struct {
		greedy, bound float64
		hasExact      bool
		exact         float64
		hasSim        bool
		sim           float64
	}
	points := make([]fig8Point, len(cfg.SensorCounts))
	if err := parallel.For(cfg.Workers, len(cfg.SensorCounts), func(i int) error {
		n := cfg.SensorCounts[i]
		if n <= 0 {
			return fmt.Errorf("experiments: non-positive sensor count %d", n)
		}
		var pt fig8Point
		u, err := fig8Utility(n, cfg.Targets, cfg.DetectP)
		if err != nil {
			return err
		}
		in := core.Instance{
			N:       n,
			Period:  period,
			Factory: func() submodular.RemovalOracle { return u.Oracle() },
		}
		sched, err := core.LazyGreedy(in)
		if err != nil {
			return err
		}
		pt.greedy = sched.AverageUtility(in.Factory, cfg.Targets)

		// The per-target bound is identical across targets in this
		// workload, so the per-target average bound is the single-target
		// formula.
		pt.bound, err = core.PaperUpperBound(cfg.DetectP, n, T)
		if err != nil {
			return err
		}

		if cfg.ExactUpTo > 0 && n <= cfg.ExactUpTo {
			opt, err := core.OptimalValue(in, core.ExactOptions{})
			if err != nil {
				return err
			}
			pt.hasExact = true
			pt.exact = opt / float64(T) / float64(cfg.Targets)
		}

		if cfg.SimulateDays > 0 {
			avgSim, err := fig8Simulate(u, n, cfg)
			if err != nil {
				return err
			}
			pt.hasSim = true
			pt.sim = avgSim
		}
		points[i] = pt
		return nil
	}); err != nil {
		return nil, err
	}

	greedy := Series{Label: "greedy-avg-utility"}
	bound := Series{Label: "upper-bound"}
	exact := Series{Label: "exact-optimum"}
	simulated := Series{Label: "simulated-30day"}
	for i, n := range cfg.SensorCounts {
		pt := points[i]
		greedy.X = append(greedy.X, float64(n))
		greedy.Y = append(greedy.Y, pt.greedy)
		bound.X = append(bound.X, float64(n))
		bound.Y = append(bound.Y, pt.bound)
		if pt.hasExact {
			exact.X = append(exact.X, float64(n))
			exact.Y = append(exact.Y, pt.exact)
		}
		if pt.hasSim {
			simulated.X = append(simulated.X, float64(n))
			simulated.Y = append(simulated.Y, pt.sim)
		}
	}

	fig := &Figure{
		ID:     fmt.Sprintf("fig8%c", 'a'+cfg.Targets-1),
		Title:  fmt.Sprintf("Average utility vs sensors (m=%d, p=%v, rho=%v)", cfg.Targets, cfg.DetectP, cfg.Rho),
		XLabel: "sensors",
		YLabel: "avg-utility",
		Series: []Series{greedy, bound},
	}
	if len(exact.X) > 0 {
		fig.Series = append(fig.Series, exact)
	}
	if len(simulated.X) > 0 {
		fig.Series = append(fig.Series, simulated)
	}
	last := len(greedy.Y) - 1
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"analytic greedy at n=%d: %.6f; bound %.6f (paper's 30-day testbed measured 0.983408764 vs bound 0.999380 for m=1, n=100)",
		cfg.SensorCounts[last], greedy.Y[last], bound.Y[last]))
	if len(simulated.Y) > 0 {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"mixed-weather %d-day simulation at n=%d: %.6f (gap below the bound mirrors the paper's measurement)",
			cfg.SimulateDays, cfg.SensorCounts[last], simulated.Y[last]))
	}
	return fig, nil
}

// fig8Simulate follows the paper's testbed methodology over
// SimulateDays 12-hour working days: each day's weather sets the
// charging ratio (60% sunny ρ=3, 30% partly cloudy ρ=5, 10% overcast
// ρ=9), the schedule is re-planned for the day's estimated pattern
// ("we can dynamically choose μd and μr according to different weather
// condition"), and the day is executed under the Section-V stochastic
// charging model whose recharge-time jitter models the residual
// estimation error. Missed slots from that jitter put the measured
// curve below the closed-form bound, as in the paper's Figure 8.
func fig8Simulate(u *submodular.DetectionUtility, n int, cfg Fig8Config) (float64, error) {
	const slotsPerDay = 48 // 12 h of 15-minute slots
	rng := stats.NewRNG(cfg.Seed + uint64(n))
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	var total float64
	for d := 0; d < cfg.SimulateDays; d++ {
		rho := 3.0
		switch r := rng.Float64(); {
		case r < 0.3:
			rho = 5
		case r < 0.4:
			rho = 9
		}
		period, err := energy.PeriodFromRho(rho)
		if err != nil {
			return 0, err
		}
		sched, err := core.LazyGreedy(core.Instance{N: n, Period: period, Factory: factory})
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(sim.Config{
			NumSensors: n,
			Slots:      slotsPerDay,
			Policy:     sim.SchedulePolicy{Schedule: sched},
			Charging: sim.RandomCharging{
				Period:          period,
				EventRate:       8, // continuous sensing: active slots fully drain
				EventDuration:   2,
				RechargeStdFrac: 0.15,
			},
			Factory: factory,
			Targets: cfg.Targets,
			Seed:    cfg.Seed + uint64(d)*1000 + uint64(n),
		})
		if err != nil {
			return 0, err
		}
		total += res.TotalUtility
	}
	return total / float64(cfg.SimulateDays*slotsPerDay) / float64(cfg.Targets), nil
}

// Fig8All regenerates all four subfigures (m = 1..4).
func Fig8All(base Fig8Config) ([]*Figure, error) {
	out := make([]*Figure, 0, 4)
	for m := 1; m <= 4; m++ {
		cfg := base
		cfg.Targets = m
		f, err := Fig8(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig8 m=%d: %w", m, err)
		}
		out = append(out, f)
	}
	return out, nil
}
