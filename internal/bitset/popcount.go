//go:build !cool_popcnt_asm

// This file is the portable word-kernel layer of the package: every
// whole-set operation (Count, And, AndCount) bottoms out in one of the
// loops below, restructured into 4-word unrolled blocks so the compiler
// emits straight-line POPCNT/AND sequences with the loop-control
// overhead amortized over 256 elements per iteration.
//
// The build tag is the clean seam for a platform kernel: a future
// `cool_popcnt_asm` file can provide the same three functions in
// assembly (e.g. AVX2 Harley–Seal popcount) without touching any
// caller — Bitset methods, the submodular oracles, and the scheduling
// engines all go through these symbols and nothing else. Whatever the
// implementation, the contract is exact integer arithmetic: results
// must be identical to the scalar reference loops (Bitset.CountScalar
// keeps one caller-visible), never merely close.
package bitset

import "math/bits"

// popcountWords returns the total number of set bits across words.
// The 4-way unroll keeps four independent accumulator chains in
// flight, hiding the POPCNT latency; integer addition is associative,
// so the split accumulators are exact. Each block is bound through a
// full slice expression words[k:k+4:k+4] — that single bound lets the
// compiler prove b[0..3] in range and drop the per-load bounds checks,
// which is worth ~25% over naive words[k+i] indexing (measured; the
// naive unroll is *slower* than the plain range loop).
func popcountWords(words []uint64) int {
	var c0, c1, c2, c3 int
	n := len(words) &^ 3
	for k := 0; k < n; k += 4 {
		b := words[k : k+4 : k+4]
		c0 += bits.OnesCount64(b[0])
		c1 += bits.OnesCount64(b[1])
		c2 += bits.OnesCount64(b[2])
		c3 += bits.OnesCount64(b[3])
	}
	for _, w := range words[n:] {
		c0 += bits.OnesCount64(w)
	}
	return c0 + c1 + c2 + c3
}

// andWords intersects dst with src in place (dst[k] &= src[k]).
// len(src) must be at least len(dst).
func andWords(dst, src []uint64) {
	src = src[:len(dst)] // hoist the length relation for bounds-check elimination
	n := len(dst) &^ 3
	for k := 0; k < n; k += 4 {
		d := dst[k : k+4 : k+4]
		s := src[k : k+4 : k+4]
		d[0] &= s[0]
		d[1] &= s[1]
		d[2] &= s[2]
		d[3] &= s[3]
	}
	for k := n; k < len(dst); k++ {
		dst[k] &= src[k]
	}
}

// popcountAndWords returns the number of set bits in the intersection
// a ∧ b without materializing it. len(b) must be at least len(a).
func popcountAndWords(a, b []uint64) int {
	b = b[:len(a)]
	var c0, c1, c2, c3 int
	n := len(a) &^ 3
	for k := 0; k < n; k += 4 {
		x := a[k : k+4 : k+4]
		y := b[k : k+4 : k+4]
		c0 += bits.OnesCount64(x[0] & y[0])
		c1 += bits.OnesCount64(x[1] & y[1])
		c2 += bits.OnesCount64(x[2] & y[2])
		c3 += bits.OnesCount64(x[3] & y[3])
	}
	for k := n; k < len(a); k++ {
		c0 += bits.OnesCount64(a[k] & b[k])
	}
	return c0 + c1 + c2 + c3
}
