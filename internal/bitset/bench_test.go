package bitset

import "testing"

// Kernel benchmarks for the unrolled whole-set sweeps. Run via
// `make bench-kernels` (and the CI bench-kernels job) with -benchmem:
// all three must report 0 allocs/op, and Count vs CountScalar makes
// the unroll win visible in the logs next to the coolbench audit.

func benchSets(b *testing.B, bits int) (Bitset, Bitset) {
	b.Helper()
	x, y := New(bits), New(bits)
	for v := 0; v < bits; v++ {
		if v%3 == 0 || (v*7)%11 == 0 {
			x.Add(v)
		}
		if v%2 == 0 {
			y.Add(v)
		}
	}
	return x, y
}

func BenchmarkKernelCount(b *testing.B) {
	s, _ := benchSets(b, 16384)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = s.Count()
	}
}

func BenchmarkKernelCountScalar(b *testing.B) {
	s, _ := benchSets(b, 16384)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = s.CountScalar()
	}
}

func BenchmarkKernelAndCount(b *testing.B) {
	x, y := benchSets(b, 16384)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = x.AndCount(y)
	}
}

// sink defeats dead-code elimination of the benchmarked calls.
var sink int
