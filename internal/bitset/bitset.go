// Package bitset provides a fixed-universe word-array set: one bit per
// element of {0, …, n−1}, packed 64 elements per uint64 word.
//
// It is the membership representation of the submodular-oracle hot path
// (see internal/submodular): Add/Remove/Contains are single-word
// bit operations with zero allocations, Count is a popcount sweep, and
// Clone/CopyFrom copy n/64 contiguous words instead of rehashing a
// map[int]bool. All operations are O(1) or O(n/64) with perfectly
// predictable, cache-friendly memory access.
//
// A Bitset is not safe for concurrent mutation; concurrent Contains /
// Count / Members calls are safe provided no Add, Remove, Clear or Fill
// runs at the same time — the same contract as the oracle reads they
// back.
package bitset

import (
	"fmt"
	"math/bits"
)

// Bitset is a set over the fixed universe {0, …, n−1}. The zero value
// is an empty set over an empty universe; use New for a sized one.
type Bitset struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe {0, …, n−1}.
func New(n int) Bitset {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative universe size %d", n))
	}
	return Bitset{words: make([]uint64, (n+63)>>6), n: n}
}

// Len returns the universe size n (not the number of members; see
// Count).
func (s Bitset) Len() int { return s.n }

// check panics when v is outside the universe. The explicit check
// matters because v>>6 can land inside the word slice even when v ≥ n,
// which would silently corrupt the set.
func (s Bitset) check(v int) {
	if v < 0 || v >= s.n {
		panic(fmt.Sprintf("bitset: element %d outside universe [0,%d)", v, s.n))
	}
}

// Contains reports whether v is a member.
func (s Bitset) Contains(v int) bool {
	s.check(v)
	return s.words[v>>6]&(1<<(uint(v)&63)) != 0
}

// Add inserts v. Adding an existing member is a no-op.
func (s Bitset) Add(v int) {
	s.check(v)
	s.words[v>>6] |= 1 << (uint(v) & 63)
}

// Remove deletes v. Removing a non-member is a no-op.
func (s Bitset) Remove(v int) {
	s.check(v)
	s.words[v>>6] &^= 1 << (uint(v) & 63)
}

// Count returns the number of members. It runs on the package's
// unrolled popcount kernel (see popcount.go); CountScalar retains the
// plain word loop as the bit-exact reference.
func (s Bitset) Count() int {
	return popcountWords(s.words)
}

// CountScalar is the pre-kernel scalar popcount loop, retained verbatim
// as the differential reference for Count: the kernel tests and the
// `coolbench -fig kernels` audit require Count() == CountScalar() on
// every input. New code should call Count.
func (s Bitset) CountScalar() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects the receiver with o in place (s ← s ∩ o). It panics
// when the universes differ, mirroring the CopyFrom compatibility rule.
func (s Bitset) And(o Bitset) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: And universe mismatch %d != %d", s.n, o.n))
	}
	andWords(s.words, o.words)
}

// AndCount returns |s ∩ o| without modifying either set — a fused
// popcount over the word-wise intersection. It panics when the
// universes differ.
func (s Bitset) AndCount(o Bitset) int {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: AndCount universe mismatch %d != %d", s.n, o.n))
	}
	return popcountAndWords(s.words, o.words)
}

// Clear empties the set in place.
func (s Bitset) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill makes every element of the universe a member.
func (s Bitset) Fill() {
	if s.n == 0 {
		return
	}
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Mask the tail beyond n so Count and Members stay exact.
	if tail := uint(s.n) & 63; tail != 0 {
		s.words[len(s.words)-1] = (1 << tail) - 1
	}
}

// Clone returns an independent copy.
func (s Bitset) Clone() Bitset {
	c := Bitset{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites the receiver with src's members. It reports false
// (leaving the receiver unchanged) when the universes differ; on true
// no allocation occurred.
func (s Bitset) CopyFrom(src Bitset) bool {
	if s.n != src.n || len(s.words) != len(src.words) {
		return false
	}
	copy(s.words, src.words)
	return true
}

// Equal reports whether both sets have the same universe and members.
func (s Bitset) Equal(o Bitset) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// AppendMembers appends the members in ascending order to dst and
// returns the extended slice. With a dst of sufficient capacity it does
// not allocate.
func (s Bitset) AppendMembers(dst []int) []int {
	for i, w := range s.words {
		base := i << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// ForEach calls fn for every member in ascending order.
func (s Bitset) ForEach(fn func(v int)) {
	for i, w := range s.words {
		base := i << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
