package bitset

import (
	"math/rand"
	"testing"
)

// boundarySizes are the tail-word corners of the 64-bit layout: the
// empty universe, a single bit, one-below/at/one-above the word
// boundary, and a two-word universe ending exactly on a boundary minus
// one. The unrolled kernels split every sweep into 4-word blocks plus
// a tail, so these sizes pin each split point: 0 and 1 words are all
// tail, 2 words straddle nothing, and the randomized sizes in
// TestKernelsMatchScalarRandom cover ≥4-word blocks.
var boundarySizes = []int{0, 1, 63, 64, 65, 127}

// fillPattern populates s with a deterministic pattern parameterized by
// phase so different sets disagree.
func fillPattern(s Bitset, phase int) {
	for v := 0; v < s.Len(); v++ {
		if (v+phase)%3 == 0 || (v*7+phase)%11 == 0 {
			s.Add(v)
		}
	}
}

func TestCountBoundarySizes(t *testing.T) {
	for _, size := range boundarySizes {
		s := New(size)
		if got, want := s.Count(), 0; got != want {
			t.Errorf("size %d: empty Count = %d", size, got)
		}
		fillPattern(s, 0)
		want := 0
		for v := 0; v < size; v++ {
			if s.Contains(v) {
				want++
			}
		}
		if got := s.Count(); got != want {
			t.Errorf("size %d: Count = %d, membership says %d", size, got, want)
		}
		if got := s.CountScalar(); got != want {
			t.Errorf("size %d: CountScalar = %d, membership says %d", size, got, want)
		}
		// Fill exercises the tail mask; a full universe must count to
		// exactly size — one stray tail bit would break this.
		s.Fill()
		if got := s.Count(); got != size {
			t.Errorf("size %d: full Count = %d", size, got)
		}
		if got := s.CountScalar(); got != size {
			t.Errorf("size %d: full CountScalar = %d", size, got)
		}
	}
}

func TestAndBoundarySizes(t *testing.T) {
	for _, size := range boundarySizes {
		a, b := New(size), New(size)
		fillPattern(a, 0)
		fillPattern(b, 5)
		// Reference intersection via membership.
		want := make([]bool, size)
		wantCount := 0
		for v := 0; v < size; v++ {
			if a.Contains(v) && b.Contains(v) {
				want[v] = true
				wantCount++
			}
		}
		if got := a.AndCount(b); got != wantCount {
			t.Errorf("size %d: AndCount = %d, want %d", size, got, wantCount)
		}
		// AndCount must not have modified its operands.
		fresh := New(size)
		fillPattern(fresh, 0)
		if !a.Equal(fresh) {
			t.Errorf("size %d: AndCount modified the receiver", size)
		}
		a.And(b)
		for v := 0; v < size; v++ {
			if a.Contains(v) != want[v] {
				t.Errorf("size %d: And membership of %d = %v, want %v", size, v, a.Contains(v), want[v])
			}
		}
		if got := a.Count(); got != wantCount {
			t.Errorf("size %d: post-And Count = %d, want %d", size, got, wantCount)
		}
	}
}

func TestAddRemoveBoundaryBits(t *testing.T) {
	s := New(128)
	for _, v := range []int{0, 1, 63, 64, 65, 127} {
		s.Add(v)
		if !s.Contains(v) || s.Count() != 1 {
			t.Errorf("Add(%d): Contains=%v Count=%d", v, s.Contains(v), s.Count())
		}
		s.Remove(v)
		if s.Contains(v) || s.Count() != 0 {
			t.Errorf("Remove(%d): Contains=%v Count=%d", v, s.Contains(v), s.Count())
		}
	}
}

func TestAndUniverseMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And across universes did not panic")
		}
	}()
	New(64).And(New(65))
}

// TestKernelsMatchScalarRandom differentially tests the unrolled
// kernels against per-word scalar loops on random universes spanning
// every unroll remainder (len(words) mod 4 ∈ {0,1,2,3}).
func TestKernelsMatchScalarRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		size := rng.Intn(700)
		a, b := New(size), New(size)
		for v := 0; v < size; v++ {
			if rng.Intn(2) == 0 {
				a.Add(v)
			}
			if rng.Intn(2) == 0 {
				b.Add(v)
			}
		}
		if got, want := a.Count(), a.CountScalar(); got != want {
			t.Fatalf("trial %d size %d: Count %d != CountScalar %d", trial, size, got, want)
		}
		// Scalar AndCount reference.
		want := 0
		for v := 0; v < size; v++ {
			if a.Contains(v) && b.Contains(v) {
				want++
			}
		}
		if got := a.AndCount(b); got != want {
			t.Fatalf("trial %d size %d: AndCount %d != scalar %d", trial, size, got, want)
		}
		a.And(b)
		if got := a.Count(); got != want {
			t.Fatalf("trial %d size %d: post-And Count %d != %d", trial, size, got, want)
		}
	}
}

// TestWholeSetOpsZeroAlloc extends the hot-op allocation gate to the
// new whole-set kernels.
func TestWholeSetOpsZeroAlloc(t *testing.T) {
	a, b := New(1024), New(1024)
	fillPattern(a, 0)
	fillPattern(b, 3)
	if allocs := testing.AllocsPerRun(100, func() {
		_ = a.Count()
		_ = a.CountScalar()
		_ = a.AndCount(b)
		a.And(b)
	}); allocs != 0 {
		t.Fatalf("whole-set operations allocated %v times per run", allocs)
	}
}
