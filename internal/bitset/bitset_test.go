package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130) // crosses two word boundaries
	if s.Len() != 130 || s.Count() != 0 {
		t.Fatalf("fresh set: Len=%d Count=%d", s.Len(), s.Count())
	}
	for _, v := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Contains(v) {
			t.Fatalf("empty set contains %d", v)
		}
		s.Add(v)
		if !s.Contains(v) {
			t.Fatalf("added %d but Contains is false", v)
		}
		s.Add(v) // idempotent
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Remove(64)
	s.Remove(64) // idempotent
	if s.Contains(64) || s.Count() != 7 {
		t.Fatalf("after Remove(64): Contains=%v Count=%d", s.Contains(64), s.Count())
	}
}

func TestFillClearMembers(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		s := New(n)
		s.Fill()
		if s.Count() != n {
			t.Fatalf("n=%d: Fill then Count = %d", n, s.Count())
		}
		members := s.AppendMembers(nil)
		if len(members) != n {
			t.Fatalf("n=%d: %d members after Fill", n, len(members))
		}
		for i, v := range members {
			if v != i {
				t.Fatalf("n=%d: member[%d] = %d", n, i, v)
			}
		}
		s.Clear()
		if s.Count() != 0 {
			t.Fatalf("n=%d: Clear left %d members", n, s.Count())
		}
	}
}

func TestCloneCopyEqual(t *testing.T) {
	s := New(100)
	s.Add(3)
	s.Add(77)
	c := s.Clone()
	if !c.Equal(s) {
		t.Fatal("clone not equal to source")
	}
	c.Add(50)
	if s.Contains(50) {
		t.Fatal("clone mutation leaked into source")
	}
	d := New(100)
	if !d.CopyFrom(s) || !d.Equal(s) {
		t.Fatal("CopyFrom same-universe failed")
	}
	e := New(101)
	if e.CopyFrom(s) {
		t.Fatal("CopyFrom accepted mismatched universe")
	}
	if s.Equal(e) {
		t.Fatal("Equal across different universes")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(300)
	want := []int{2, 64, 65, 190, 299}
	for _, v := range want {
		s.Add(v)
	}
	var got []int
	s.ForEach(func(v int) { got = append(got, v) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d members, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v want %v", got, want)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, v := range []int{-1, 10, 64} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for element %d", v)
				}
			}()
			s.Contains(v)
		}()
	}
}

// TestAgainstMap cross-checks a random operation sequence against a
// map[int]bool reference.
func TestAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 257
	s := New(n)
	ref := make(map[int]bool)
	for i := 0; i < 5000; i++ {
		v := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Add(v)
			ref[v] = true
		case 1:
			s.Remove(v)
			delete(ref, v)
		default:
			if s.Contains(v) != ref[v] {
				t.Fatalf("step %d: Contains(%d) = %v, ref %v", i, v, s.Contains(v), ref[v])
			}
		}
		if s.Count() != len(ref) {
			t.Fatalf("step %d: Count = %d, ref %d", i, s.Count(), len(ref))
		}
	}
}

func TestZeroAllocHotOps(t *testing.T) {
	s := New(1024)
	scratch := make([]int, 0, 1024)
	if a := testing.AllocsPerRun(100, func() {
		s.Add(513)
		_ = s.Contains(513)
		s.Remove(513)
		_ = s.Count()
		scratch = s.AppendMembers(scratch[:0])
	}); a != 0 {
		t.Fatalf("hot operations allocated %v times per run", a)
	}
}
