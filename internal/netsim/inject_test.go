package netsim

import (
	"testing"

	"cool/internal/geometry"
	"cool/internal/stats"
)

// injectFleet deploys n nodes deterministically on a fieldSide square.
func injectFleet(n int, fieldSide, radio float64, seed uint64) []NodeSpec {
	rng := stats.NewRNG(seed)
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{
			ID: NodeID(i),
			Pos: geometry.Point{
				X: rng.Float64() * fieldSide,
				Y: rng.Float64() * fieldSide,
			},
			Radio: radio,
		}
	}
	return specs
}

// TestBatchFromMatchesBatch holds BatchFrom to Batch's exact delivery
// semantics: replaying node v's broadcast into a twin network that
// contains every node except v delivers exactly the packets v's local
// Batch delivers, with identical counters (lossless fixed-delay medium,
// so RNG streams cannot diverge the comparison).
func TestBatchFromMatchesBatch(t *testing.T) {
	const n = 60
	specs := injectFleet(n, 200, 45, 7)
	for _, src := range []int{0, 17, n - 1} {
		full, err := NewNetwork(WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := full.AddNodes(specs); err != nil {
			t.Fatal(err)
		}
		rest, err := NewNetwork(WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		others := make([]NodeSpec, 0, n-1)
		for _, s := range specs {
			if s.ID != NodeID(src) {
				others = append(others, s)
			}
		}
		if err := rest.AddNodes(others); err != nil {
			t.Fatal(err)
		}
		rest.ReserveReach(specs[src].Radio)

		sent, err := full.Batch(NodeID(src), "hello")
		if err != nil {
			t.Fatal(err)
		}
		injected := rest.BatchFrom(NodeID(src), specs[src].Pos, specs[src].Radio, "hello")
		if injected != sent {
			t.Fatalf("src %d: BatchFrom enqueued %d, Batch %d", src, injected, sent)
		}
		full.Step()
		rest.Step()
		var fb, rb []Message
		for _, s := range others {
			if fb, err = full.ReceiveInto(s.ID, fb[:0]); err != nil {
				t.Fatal(err)
			}
			if rb, err = rest.ReceiveInto(s.ID, rb[:0]); err != nil {
				t.Fatal(err)
			}
			if len(fb) != len(rb) {
				t.Fatalf("src %d: node %d got %d messages, want %d", src, s.ID, len(rb), len(fb))
			}
			for k := range fb {
				if fb[k] != rb[k] {
					t.Fatalf("src %d node %d msg %d: %+v != %+v", src, s.ID, k, rb[k], fb[k])
				}
			}
		}
		fs, fd, fx := full.Stats()
		rs, rd, rx := rest.Stats()
		if fs != rs || fd != rd || fx != rx {
			t.Fatalf("src %d: stats (%d,%d,%d) != (%d,%d,%d)", src, rs, rd, rx, fs, fd, fx)
		}
	}
}

// TestBatchFromSkipsDownAndSelf checks the receiver filters: down nodes
// and a registered node carrying the transmitter's own ID receive
// nothing.
func TestBatchFromSkipsDownAndSelf(t *testing.T) {
	net, err := NewNetwork()
	if err != nil {
		t.Fatal(err)
	}
	specs := []NodeSpec{
		{ID: 1, Pos: geometry.Point{X: 0, Y: 0}, Radio: 10},
		{ID: 2, Pos: geometry.Point{X: 1, Y: 0}, Radio: 10},
		{ID: 3, Pos: geometry.Point{X: 2, Y: 0}, Radio: 10},
	}
	if err := net.AddNodes(specs); err != nil {
		t.Fatal(err)
	}
	if err := net.SetDown(3, true); err != nil {
		t.Fatal(err)
	}
	// Transmitter ID 2 is also registered locally: only node 1 receives.
	if got := net.BatchFrom(2, geometry.Point{X: 0.5, Y: 0}, 10, "x"); got != 1 {
		t.Fatalf("enqueued %d packets, want 1", got)
	}
	net.Step()
	msgs, err := net.Receive(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].From != 2 {
		t.Fatalf("node 1 inbox %+v, want one message from 2", msgs)
	}
	for _, id := range []NodeID{2, 3} {
		msgs, err := net.Receive(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 0 {
			t.Fatalf("node %d inbox %+v, want empty", id, msgs)
		}
	}
}

// TestBatchFromLinearFallback compares the grid path against the
// linear-scan fallback (radio beyond the index reach) — both must find
// the same receivers.
func TestBatchFromLinearFallback(t *testing.T) {
	specs := injectFleet(40, 100, 5, 11)
	pos := geometry.Point{X: 50, Y: 50}
	const radio = 60 // beyond every node's 5-unit range → linear path

	linear, err := NewNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := linear.AddNodes(specs); err != nil {
		t.Fatal(err)
	}
	gridded, err := NewNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := gridded.AddNodes(specs); err != nil {
		t.Fatal(err)
	}
	gridded.ReserveReach(radio) // forces the grid path for the same query

	nl := linear.BatchFrom(999, pos, radio, "y")
	ng := gridded.BatchFrom(999, pos, radio, "y")
	if nl != ng {
		t.Fatalf("linear fallback enqueued %d, grid path %d", nl, ng)
	}
	linear.Step()
	gridded.Step()
	for _, s := range specs {
		a, err := linear.Receive(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, err := gridded.Receive(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("node %d: linear %d msgs, grid %d", s.ID, len(a), len(b))
		}
	}
}

// TestBatchFromSteadyStateAllocs pins the injection path at zero
// allocations once scratch buffers and ring buckets reached capacity.
func TestBatchFromSteadyStateAllocs(t *testing.T) {
	specs := injectFleet(80, 100, 25, 13)
	net, err := NewNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddNodes(specs); err != nil {
		t.Fatal(err)
	}
	net.ReserveReach(30)
	pos := geometry.Point{X: 50, Y: 50}
	payload := any("p")
	var buf []Message
	round := func() {
		net.BatchFrom(1000, pos, 30, payload)
		net.Step()
		for _, s := range specs {
			buf, _ = net.ReceiveInto(s.ID, buf[:0])
		}
	}
	round() // warmup: grid build, scratch and ring capacity
	if allocs := testing.AllocsPerRun(50, round); allocs != 0 {
		t.Fatalf("BatchFrom round allocates %v per run, want 0", allocs)
	}
}
