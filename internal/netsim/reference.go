package netsim

import (
	"fmt"
	"sort"

	"cool/internal/geometry"
	"cool/internal/stats"
)

// ReferenceNetwork is the original map-based radio medium, retained as
// the behavioural yardstick for the flat batched Network. It delivers
// events through map[NodeID]*node lookups, a map[int][]Message pending
// store, and O(n) distance scans for every neighborhood query — the
// shape the flat core replaces — but its semantics define the package:
// the differential harness (diff_test.go, FuzzNetsimDiff) holds the
// flat core to tick-for-tick identical delivery traces, counters, and
// RNG draws against this implementation.
//
// Like Network it is not safe for concurrent use.
type ReferenceNetwork struct {
	cfg     Config
	rng     *stats.RNG
	nodes   map[NodeID]*refNode
	order   []NodeID // deterministic iteration order, ascending
	pending map[int][]Message
	now     int
	// counters
	sent, delivered, dropped int
}

type refNode struct {
	id    NodeID
	pos   geometry.Point
	radio float64
	inbox []Message
	down  bool
}

// NewReference builds an empty reference network.
func NewReference(cfg Config) (*ReferenceNetwork, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	return &ReferenceNetwork{
		cfg:     cfg,
		rng:     stats.NewRNG(cfg.Seed),
		nodes:   make(map[NodeID]*refNode),
		pending: make(map[int][]Message),
	}, nil
}

// AddNode registers a node with a position and radio range. The node is
// inserted into the sorted iteration order in place (binary search +
// shift) rather than re-sorting the whole slice per insertion.
func (n *ReferenceNetwork) AddNode(id NodeID, pos geometry.Point, radioRange float64) error {
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("netsim: duplicate node %d", id)
	}
	if radioRange <= 0 {
		return fmt.Errorf("netsim: node %d has non-positive radio range %v", id, radioRange)
	}
	n.nodes[id] = &refNode{id: id, pos: pos, radio: radioRange}
	at := sort.Search(len(n.order), func(i int) bool { return n.order[i] >= id })
	n.order = append(n.order, 0)
	copy(n.order[at+1:], n.order[at:])
	n.order[at] = id
	return nil
}

// AddNodes bulk-registers nodes, mirroring Network.AddNodes so the
// differential harness can drive both implementations with one script.
func (n *ReferenceNetwork) AddNodes(specs []NodeSpec) error {
	for _, s := range specs {
		if err := n.AddNode(s.ID, s.Pos, s.Radio); err != nil {
			return err
		}
	}
	return nil
}

// Now returns the current tick.
func (n *ReferenceNetwork) Now() int { return n.now }

// NumNodes returns the number of registered nodes.
func (n *ReferenceNetwork) NumNodes() int { return len(n.nodes) }

// Neighbors returns the nodes within radio range of id via a full O(n)
// distance scan, ascending by node ID.
func (n *ReferenceNetwork) Neighbors(id NodeID) ([]NodeID, error) {
	src, ok := n.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	if src.down {
		return nil, nil
	}
	var out []NodeID
	for _, other := range n.order {
		if other == id {
			continue
		}
		dst := n.nodes[other]
		if !dst.down && src.pos.Dist(dst.pos) <= src.radio {
			out = append(out, other)
		}
	}
	return out, nil
}

// SetDown marks a node failed (or recovered). A down node neither
// sends nor receives: its queued deliveries are silently dropped and it
// disappears from every neighborhood until brought back up.
func (n *ReferenceNetwork) SetDown(id NodeID, down bool) error {
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	nd.down = down
	if down {
		nd.inbox = nil
	}
	return nil
}

// IsDown reports whether a node is currently failed.
func (n *ReferenceNetwork) IsDown(id NodeID) bool {
	nd, ok := n.nodes[id]
	return ok && nd.down
}

// Connected reports whether the radio graph is connected (every node
// reachable from the first).
func (n *ReferenceNetwork) Connected() bool {
	if len(n.order) <= 1 {
		return true
	}
	seen := map[NodeID]bool{n.order[0]: true}
	queue := []NodeID{n.order[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		neigh, err := n.Neighbors(cur)
		if err != nil {
			return false
		}
		for _, nb := range neigh {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == len(n.order)
}

// enqueue schedules delivery of one message with loss and jitter.
func (n *ReferenceNetwork) enqueue(m Message) {
	n.sent++
	if n.rng.Bernoulli(n.cfg.Loss) {
		n.dropped++
		return
	}
	delay := n.cfg.MinDelay
	if n.cfg.MaxDelay > n.cfg.MinDelay {
		delay += n.rng.Intn(n.cfg.MaxDelay - n.cfg.MinDelay + 1)
	}
	m.DeliveredAt = n.now + delay
	n.pending[m.DeliveredAt] = append(n.pending[m.DeliveredAt], m)
}

// Broadcast transmits a payload to every radio neighbor of from.
func (n *ReferenceNetwork) Broadcast(from NodeID, payload any) error {
	_, err := n.Batch(from, payload)
	return err
}

// Batch transmits a payload to every radio neighbor of from and returns
// how many packets were enqueued, mirroring Network.Batch.
func (n *ReferenceNetwork) Batch(from NodeID, payload any) (int, error) {
	neigh, err := n.Neighbors(from)
	if err != nil {
		return 0, err
	}
	for _, to := range neigh {
		n.enqueue(Message{From: from, To: to, Payload: payload, SentAt: n.now})
	}
	return len(neigh), nil
}

// Send transmits a payload to a specific neighbor. It returns an error
// when the destination is not within radio range.
func (n *ReferenceNetwork) Send(from, to NodeID, payload any) error {
	neigh, err := n.Neighbors(from)
	if err != nil {
		return err
	}
	for _, nb := range neigh {
		if nb == to {
			n.enqueue(Message{From: from, To: to, Payload: payload, SentAt: n.now})
			return nil
		}
	}
	return fmt.Errorf("netsim: node %d cannot reach %d", from, to)
}

// Step advances the network by one tick, moving due messages into their
// destinations' inboxes.
func (n *ReferenceNetwork) Step() {
	n.now++
	due := n.pending[n.now]
	delete(n.pending, n.now)
	for _, m := range due {
		dst, ok := n.nodes[m.To]
		if !ok || dst.down {
			n.dropped++
			continue
		}
		dst.inbox = append(dst.inbox, m)
		n.delivered++
	}
}

// Receive drains and returns the inbox of a node.
func (n *ReferenceNetwork) Receive(id NodeID) ([]Message, error) {
	nd, ok := n.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	out := nd.inbox
	nd.inbox = nil
	return out, nil
}

// ReceiveInto drains the inbox of a node into buf[:0], mirroring
// Network.ReceiveInto (the reference path still allocates internally;
// only the flat core carries the zero-alloc contract).
func (n *ReferenceNetwork) ReceiveInto(id NodeID, buf []Message) ([]Message, error) {
	nd, ok := n.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	buf = append(buf[:0], nd.inbox...)
	nd.inbox = nil
	return buf, nil
}

// Stats returns cumulative (sent, delivered, dropped) packet counts.
func (n *ReferenceNetwork) Stats() (sent, delivered, dropped int) {
	return n.sent, n.delivered, n.dropped
}

// Position returns a node's position.
func (n *ReferenceNetwork) Position(id NodeID) (geometry.Point, error) {
	nd, ok := n.nodes[id]
	if !ok {
		return geometry.Point{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return nd.pos, nil
}
