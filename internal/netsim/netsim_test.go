package netsim

import (
	"errors"
	"testing"

	"cool/internal/geometry"
)

// radio is the method set shared by the flat core and the retained
// reference implementation; the behavioural tests below run against
// both so the two cannot drift apart.
type radio interface {
	AddNode(NodeID, geometry.Point, float64) error
	AddNodes([]NodeSpec) error
	Neighbors(NodeID) ([]NodeID, error)
	SetDown(NodeID, bool) error
	IsDown(NodeID) bool
	Connected() bool
	Broadcast(NodeID, any) error
	Batch(NodeID, any) (int, error)
	Send(NodeID, NodeID, any) error
	Step()
	Receive(NodeID) ([]Message, error)
	ReceiveInto(NodeID, []Message) ([]Message, error)
	Stats() (sent, delivered, dropped int)
	Now() int
	NumNodes() int
	Position(NodeID) (geometry.Point, error)
}

// impls enumerates the two network constructors under test.
var impls = []struct {
	name string
	make func(Config) (radio, error)
}{
	{"flat", func(cfg Config) (radio, error) { return New(cfg) }},
	{"reference", func(cfg Config) (radio, error) { return NewReference(cfg) }},
}

// forEachImpl runs f once per implementation as a named subtest.
func forEachImpl(t *testing.T, cfg Config, f func(t *testing.T, net radio)) {
	t.Helper()
	for _, im := range impls {
		im := im
		t.Run(im.name, func(t *testing.T) {
			net, err := im.make(cfg)
			if err != nil {
				t.Fatal(err)
			}
			f(t, net)
		})
	}
}

func lineNetworkOn(t *testing.T, net radio, spacing float64, n int, radioRange float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := net.AddNode(NodeID(i), geometry.Point{X: float64(i) * spacing}, radioRange); err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, im := range impls {
		t.Run(im.name, func(t *testing.T) {
			if _, err := im.make(Config{Loss: -0.1}); err == nil {
				t.Error("negative loss accepted")
			}
			if _, err := im.make(Config{Loss: 1}); err == nil {
				t.Error("loss=1 accepted")
			}
			if _, err := im.make(Config{MinDelay: 3, MaxDelay: 1}); err == nil {
				t.Error("inverted delays accepted")
			}
			if _, err := im.make(Config{MinDelay: -1, MaxDelay: -1}); err == nil {
				t.Error("negative delays accepted")
			}
		})
	}
}

func TestOptionsConstructor(t *testing.T) {
	if _, err := NewNetwork(WithLoss(-0.1)); err == nil {
		t.Error("negative loss accepted")
	}
	if _, err := NewNetwork(WithDelay(3, 1)); err == nil {
		t.Error("inverted delays accepted")
	}
	net, err := NewNetwork(WithLoss(0.25), WithDelay(2, 5), WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Loss: 0.25, MinDelay: 2, MaxDelay: 5, Seed: 99}
	if net.cfg != want {
		t.Errorf("cfg = %+v, want %+v", net.cfg, want)
	}
	// The options constructor and the deprecated Config constructor
	// must produce byte-identical behaviour from the same parameters.
	old, err := New(want)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Network{net, old} {
		if err := n.AddNodes([]NodeSpec{
			{ID: 0, Pos: geometry.Point{}, Radio: 15},
			{ID: 1, Pos: geometry.Point{X: 10}, Radio: 15},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		if err := net.Send(0, 1, i); err != nil {
			t.Fatal(err)
		}
		if err := old.Send(0, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	for tick := 0; tick < 6; tick++ {
		net.Step()
		old.Step()
		a, _ := net.Receive(1)
		b, _ := old.Receive(1)
		if len(a) != len(b) {
			t.Fatalf("tick %d: options core delivered %d, config core %d", tick, len(a), len(b))
		}
	}
}

func TestAddNodeValidation(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		if err := net.AddNode(1, geometry.Point{}, 10); err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(1, geometry.Point{}, 10); err == nil {
			t.Error("duplicate node accepted")
		}
		if err := net.AddNode(2, geometry.Point{}, 0); err == nil {
			t.Error("zero radio range accepted")
		}
		if err := net.AddNode(3, geometry.Point{}, -1); err == nil {
			t.Error("negative radio range accepted")
		}
	})
}

func TestAddNodesBulk(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		specs := []NodeSpec{
			{ID: 4, Pos: geometry.Point{X: 40}, Radio: 15},
			{ID: 0, Pos: geometry.Point{X: 0}, Radio: 15},
			{ID: 2, Pos: geometry.Point{X: 20}, Radio: 15},
			{ID: 1, Pos: geometry.Point{X: 10}, Radio: 15},
			{ID: 3, Pos: geometry.Point{X: 30}, Radio: 15},
		}
		if err := net.AddNodes(specs); err != nil {
			t.Fatal(err)
		}
		if net.NumNodes() != 5 {
			t.Fatalf("NumNodes = %d", net.NumNodes())
		}
		// Neighborhoods come back ascending regardless of registration order.
		n2, err := net.Neighbors(2)
		if err != nil {
			t.Fatal(err)
		}
		if len(n2) != 2 || n2[0] != 1 || n2[1] != 3 {
			t.Errorf("Neighbors(2) = %v, want [1 3]", n2)
		}
		if !net.Connected() {
			t.Error("bulk-registered line should be connected")
		}
	})
}

func TestAddNodesRejectsBadSpecs(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		if err := net.AddNode(7, geometry.Point{}, 5); err != nil {
			t.Fatal(err)
		}
		if err := net.AddNodes([]NodeSpec{{ID: 8, Radio: 5}, {ID: 7, Radio: 5}}); err == nil {
			t.Error("batch colliding with an existing node accepted")
		}
		if err := net.AddNodes([]NodeSpec{{ID: 9, Radio: 0}}); err == nil {
			t.Error("zero radio range accepted")
		}
	})
	// Atomicity (flat core contract): a rejected batch must leave the
	// network untouched, including specs ordered before the bad one.
	net, err := NewNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddNodes([]NodeSpec{
		{ID: 1, Radio: 5},
		{ID: 2, Radio: 5},
		{ID: 2, Radio: 5}, // duplicate within the batch
	}); err == nil {
		t.Fatal("in-batch duplicate accepted")
	}
	if net.NumNodes() != 0 {
		t.Errorf("failed AddNodes left %d nodes registered", net.NumNodes())
	}
}

func TestNeighborsLine(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 4, 15)
		n1, err := net.Neighbors(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(n1) != 2 || n1[0] != 0 || n1[1] != 2 {
			t.Errorf("Neighbors(1) = %v, want [0 2]", n1)
		}
		n0, err := net.Neighbors(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(n0) != 1 || n0[0] != 1 {
			t.Errorf("Neighbors(0) = %v, want [1]", n0)
		}
		if _, err := net.Neighbors(99); err == nil {
			t.Error("unknown node accepted")
		}
	})
}

func TestConnected(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 5, 15)
		if !net.Connected() {
			t.Error("line should be connected")
		}
	})
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 100, 3, 15)
		if net.Connected() {
			t.Error("sparse line should be disconnected")
		}
	})
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 1, 15)
		if !net.Connected() {
			t.Error("singleton should be connected")
		}
	})
}

func TestConnectedEdgeCases(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		// Empty network: trivially connected.
		if !net.Connected() {
			t.Error("empty network should be connected")
		}
		lineNetworkOn(t, net, 10, 4, 15)
		// A down relay severs the line: down nodes are still part of the
		// population Connected must reach, but relay nothing.
		if err := net.SetDown(1, true); err != nil {
			t.Fatal(err)
		}
		if net.Connected() {
			t.Error("line with a down relay should be disconnected")
		}
		if err := net.SetDown(1, false); err != nil {
			t.Fatal(err)
		}
		if !net.Connected() {
			t.Error("recovered relay should reconnect the line")
		}
		// A down BFS root (lowest ID) reaches nothing.
		if err := net.SetDown(0, true); err != nil {
			t.Fatal(err)
		}
		if net.Connected() {
			t.Error("down lowest-ID node should disconnect the network")
		}
	})
	// Single down node: still "connected" (the ≤ 1 node short-circuit).
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 1, 15)
		if err := net.SetDown(0, true); err != nil {
			t.Fatal(err)
		}
		if !net.Connected() {
			t.Error("single down node should still report connected")
		}
	})
}

func TestAsymmetricRanges(t *testing.T) {
	// Node 0 has a long radio that reaches node 1; node 1's short radio
	// does not reach back. The unit-disk model uses the transmitter's
	// range, so the link is one-directional.
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		if err := net.AddNodes([]NodeSpec{
			{ID: 0, Pos: geometry.Point{}, Radio: 20},
			{ID: 1, Pos: geometry.Point{X: 15}, Radio: 5},
		}); err != nil {
			t.Fatal(err)
		}
		n0, err := net.Neighbors(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(n0) != 1 || n0[0] != 1 {
			t.Errorf("Neighbors(0) = %v, want [1]", n0)
		}
		n1, err := net.Neighbors(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(n1) != 0 {
			t.Errorf("Neighbors(1) = %v, want []", n1)
		}
		if err := net.Send(0, 1, "down the link"); err != nil {
			t.Errorf("long-radio send failed: %v", err)
		}
		if err := net.Send(1, 0, "up the link"); err == nil {
			t.Error("short-radio send accepted")
		}
		// Asymmetric reachability means the graph is not connected in
		// the BFS-from-lowest-ID sense only if the forward direction is
		// missing; 0 reaches 1, so the network is connected.
		if !net.Connected() {
			t.Error("forward-reachable pair should be connected")
		}
	})
}

func TestSendAndReceive(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 3, 15)
		if err := net.Send(0, 1, "hello"); err != nil {
			t.Fatal(err)
		}
		// Not delivered before the step.
		msgs, err := net.Receive(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 0 {
			t.Fatal("message delivered before Step")
		}
		net.Step()
		msgs, err = net.Receive(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 || msgs[0].Payload != "hello" || msgs[0].From != 0 {
			t.Fatalf("messages = %+v", msgs)
		}
		// Receive drains.
		msgs, _ = net.Receive(1)
		if len(msgs) != 0 {
			t.Error("Receive did not drain inbox")
		}
	})
}

func TestReceiveInto(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 3, 15)
		for i := 0; i < 4; i++ {
			if err := net.Send(0, 1, i); err != nil {
				t.Fatal(err)
			}
		}
		net.Step()
		buf := make([]Message, 0, 8)
		buf, err := net.ReceiveInto(1, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != 4 {
			t.Fatalf("ReceiveInto returned %d messages, want 4", len(buf))
		}
		for i, m := range buf {
			if m.Payload != i || m.From != 0 || m.To != 1 {
				t.Errorf("message %d = %+v", i, m)
			}
		}
		// ReceiveInto drains: a second call truncates the buffer.
		buf, err = net.ReceiveInto(1, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != 0 {
			t.Error("ReceiveInto did not drain inbox")
		}
		if _, err := net.ReceiveInto(99, nil); err == nil {
			t.Error("ReceiveInto of unknown node accepted")
		}
	})
}

func TestSendOutOfRange(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 3, 15)
		if err := net.Send(0, 2, "x"); err == nil {
			t.Error("send beyond radio range accepted")
		}
		if err := net.Send(99, 0, "x"); err == nil {
			t.Error("send from unknown node accepted")
		}
		if err := net.Send(0, 99, "x"); err == nil {
			t.Error("send to unknown node accepted")
		}
		if err := net.Send(0, 0, "x"); err == nil {
			t.Error("self-send accepted")
		}
	})
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 3, 15)
		if err := net.Broadcast(1, 42); err != nil {
			t.Fatal(err)
		}
		net.Step()
		for _, id := range []NodeID{0, 2} {
			msgs, err := net.Receive(id)
			if err != nil {
				t.Fatal(err)
			}
			if len(msgs) != 1 || msgs[0].Payload != 42 {
				t.Errorf("node %d messages = %+v", id, msgs)
			}
		}
		if msgs, _ := net.Receive(1); len(msgs) != 0 {
			t.Error("broadcaster received its own packet")
		}
	})
}

func TestBatchCountsNeighbors(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 5, 15)
		sent, err := net.Batch(2, "beacon")
		if err != nil {
			t.Fatal(err)
		}
		if sent != 2 {
			t.Errorf("Batch(2) enqueued %d packets, want 2", sent)
		}
		sent, err = net.Batch(0, "beacon")
		if err != nil {
			t.Fatal(err)
		}
		if sent != 1 {
			t.Errorf("Batch(0) enqueued %d packets, want 1", sent)
		}
		if _, err := net.Batch(99, "beacon"); err == nil {
			t.Error("Batch from unknown node accepted")
		}
		// Batch from a down node reaches nobody and is not an error,
		// matching Broadcast-over-Neighbors semantics.
		if err := net.SetDown(1, true); err != nil {
			t.Fatal(err)
		}
		sent, err = net.Batch(1, "beacon")
		if err != nil {
			t.Fatal(err)
		}
		if sent != 0 {
			t.Errorf("down node batched %d packets", sent)
		}
	})
}

func TestLossDropsPackets(t *testing.T) {
	forEachImpl(t, Config{Loss: 0.5, Seed: 1}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 2, 15)
		const n = 1000
		for i := 0; i < n; i++ {
			if err := net.Send(0, 1, i); err != nil {
				t.Fatal(err)
			}
		}
		net.Step()
		msgs, err := net.Receive(1)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(len(msgs)) / n
		if got < 0.4 || got > 0.6 {
			t.Errorf("delivery rate %v, want ~0.5", got)
		}
		sent, delivered, dropped := net.Stats()
		if sent != n || delivered+dropped != n {
			t.Errorf("stats inconsistent: %d %d %d", sent, delivered, dropped)
		}
	})
}

func TestDelayJitter(t *testing.T) {
	forEachImpl(t, Config{MinDelay: 1, MaxDelay: 3, Seed: 2}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 2, 15)
		const n = 300
		for i := 0; i < n; i++ {
			if err := net.Send(0, 1, i); err != nil {
				t.Fatal(err)
			}
		}
		counts := make([]int, 4)
		for step := 1; step <= 3; step++ {
			net.Step()
			msgs, err := net.Receive(1)
			if err != nil {
				t.Fatal(err)
			}
			counts[step] = len(msgs)
		}
		total := counts[1] + counts[2] + counts[3]
		if total != n {
			t.Fatalf("delivered %d of %d within max delay", total, n)
		}
		for d := 1; d <= 3; d++ {
			if counts[d] == 0 {
				t.Errorf("no messages with delay %d; jitter not applied", d)
			}
		}
	})
}

// TestRingWrapAround pushes traffic for many more ticks than the ring
// length so every bucket is reused repeatedly, interleaving sends at
// different ticks with jittered delays.
func TestRingWrapAround(t *testing.T) {
	forEachImpl(t, Config{MinDelay: 1, MaxDelay: 4, Seed: 3}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 2, 15)
		sentTotal, gotTotal := 0, 0
		for tick := 0; tick < 200; tick++ {
			for k := 0; k < 3; k++ {
				if err := net.Send(0, 1, tick*10+k); err != nil {
					t.Fatal(err)
				}
				sentTotal++
			}
			net.Step()
			msgs, err := net.Receive(1)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range msgs {
				if m.DeliveredAt != net.Now() {
					t.Fatalf("message delivered at tick %d but DeliveredAt=%d", net.Now(), m.DeliveredAt)
				}
				if d := m.DeliveredAt - m.SentAt; d < 1 || d > 4 {
					t.Fatalf("delay %d outside [1,4]", d)
				}
			}
			gotTotal += len(msgs)
		}
		// Drain the tail.
		for tick := 0; tick < 4; tick++ {
			net.Step()
			msgs, _ := net.Receive(1)
			gotTotal += len(msgs)
		}
		if gotTotal != sentTotal {
			t.Errorf("delivered %d of %d sent", gotTotal, sentTotal)
		}
	})
}

func TestStepMonotonicClock(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 2, 15)
		if net.Now() != 0 {
			t.Error("fresh network clock not 0")
		}
		net.Step()
		net.Step()
		if net.Now() != 2 {
			t.Errorf("Now = %d, want 2", net.Now())
		}
	})
}

func TestPositionLookup(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 2, 15)
		p, err := net.Position(1)
		if err != nil {
			t.Fatal(err)
		}
		if p.X != 10 {
			t.Errorf("position = %v", p)
		}
		if _, err := net.Position(9); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("Position(9) error = %v, want ErrUnknownNode", err)
		}
		if _, err := net.Receive(9); err == nil {
			t.Error("Receive of unknown node accepted")
		}
	})
}

func TestSetDown(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 3, 15)
		if err := net.SetDown(9, true); !errors.Is(err, ErrUnknownNode) {
			t.Errorf("SetDown(9) error = %v, want ErrUnknownNode", err)
		}
		if err := net.SetDown(1, true); err != nil {
			t.Fatal(err)
		}
		if !net.IsDown(1) || net.IsDown(0) {
			t.Error("IsDown wrong")
		}
		// Down nodes vanish from neighborhoods.
		n0, err := net.Neighbors(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(n0) != 0 {
			t.Errorf("Neighbors(0) = %v with node 1 down", n0)
		}
		// A down transmitter has no neighborhood at all.
		n1, err := net.Neighbors(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(n1) != 0 {
			t.Errorf("Neighbors(1) = %v while down", n1)
		}
		// In-flight messages to a node that fails are dropped.
		if err := net.SetDown(1, false); err != nil {
			t.Fatal(err)
		}
		if err := net.Send(0, 1, "x"); err != nil {
			t.Fatal(err)
		}
		if err := net.SetDown(1, true); err != nil {
			t.Fatal(err)
		}
		net.Step()
		if err := net.SetDown(1, false); err != nil {
			t.Fatal(err)
		}
		msgs, err := net.Receive(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 0 {
			t.Error("message delivered to a down node")
		}
		// Down senders cannot transmit.
		if err := net.SetDown(0, true); err != nil {
			t.Fatal(err)
		}
		if err := net.Send(0, 1, "x"); err == nil {
			t.Error("down sender transmitted")
		}
	})
}

// TestSetDownQueuedInboxCleared covers the other failure direction: a
// node that already holds delivered messages loses them when it fails.
func TestSetDownQueuedInboxCleared(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 3, 15)
		if err := net.Send(0, 1, "queued"); err != nil {
			t.Fatal(err)
		}
		net.Step()
		if err := net.SetDown(1, true); err != nil {
			t.Fatal(err)
		}
		if err := net.SetDown(1, false); err != nil {
			t.Fatal(err)
		}
		msgs, err := net.Receive(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 0 {
			t.Errorf("inbox survived the failure: %+v", msgs)
		}
	})
}

// TestAddNodeAfterTraffic adds a node mid-run (invalidating the flat
// core's spatial index) and checks the new node joins neighborhoods and
// delivery immediately.
func TestAddNodeAfterTraffic(t *testing.T) {
	forEachImpl(t, Config{}, func(t *testing.T, net radio) {
		lineNetworkOn(t, net, 10, 2, 15)
		if err := net.Send(0, 1, "warmup"); err != nil {
			t.Fatal(err)
		}
		net.Step()
		if _, err := net.Receive(1); err != nil {
			t.Fatal(err)
		}
		if err := net.AddNode(2, geometry.Point{X: 20}, 15); err != nil {
			t.Fatal(err)
		}
		n1, err := net.Neighbors(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(n1) != 2 || n1[0] != 0 || n1[1] != 2 {
			t.Errorf("Neighbors(1) = %v after late add, want [0 2]", n1)
		}
		if err := net.Send(2, 1, "late"); err != nil {
			t.Fatal(err)
		}
		net.Step()
		msgs, err := net.Receive(1)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 || msgs[0].Payload != "late" {
			t.Errorf("late node's packet not delivered: %+v", msgs)
		}
	})
}
