package netsim

import (
	"testing"

	"cool/internal/geometry"
)

func lineNetwork(t *testing.T, cfg Config, spacing float64, n int, radio float64) *Network {
	t.Helper()
	net, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := net.AddNode(NodeID(i), geometry.Point{X: float64(i) * spacing}, radio); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Loss: -0.1}); err == nil {
		t.Error("negative loss accepted")
	}
	if _, err := New(Config{Loss: 1}); err == nil {
		t.Error("loss=1 accepted")
	}
	if _, err := New(Config{MinDelay: 3, MaxDelay: 1}); err == nil {
		t.Error("inverted delays accepted")
	}
	if _, err := New(Config{MinDelay: -1, MaxDelay: -1}); err == nil {
		t.Error("negative delays accepted")
	}
}

func TestAddNodeValidation(t *testing.T) {
	net, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(1, geometry.Point{}, 10); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(1, geometry.Point{}, 10); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := net.AddNode(2, geometry.Point{}, 0); err == nil {
		t.Error("zero radio range accepted")
	}
}

func TestNeighborsLine(t *testing.T) {
	net := lineNetwork(t, Config{}, 10, 4, 15)
	n1, err := net.Neighbors(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(n1) != 2 || n1[0] != 0 || n1[1] != 2 {
		t.Errorf("Neighbors(1) = %v, want [0 2]", n1)
	}
	n0, err := net.Neighbors(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(n0) != 1 || n0[0] != 1 {
		t.Errorf("Neighbors(0) = %v, want [1]", n0)
	}
	if _, err := net.Neighbors(99); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestConnected(t *testing.T) {
	if !lineNetwork(t, Config{}, 10, 5, 15).Connected() {
		t.Error("line should be connected")
	}
	if lineNetwork(t, Config{}, 100, 3, 15).Connected() {
		t.Error("sparse line should be disconnected")
	}
	if !lineNetwork(t, Config{}, 10, 1, 15).Connected() {
		t.Error("singleton should be connected")
	}
}

func TestSendAndReceive(t *testing.T) {
	net := lineNetwork(t, Config{}, 10, 3, 15)
	if err := net.Send(0, 1, "hello"); err != nil {
		t.Fatal(err)
	}
	// Not delivered before the step.
	msgs, err := net.Receive(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatal("message delivered before Step")
	}
	net.Step()
	msgs, err = net.Receive(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Payload != "hello" || msgs[0].From != 0 {
		t.Fatalf("messages = %+v", msgs)
	}
	// Receive drains.
	msgs, _ = net.Receive(1)
	if len(msgs) != 0 {
		t.Error("Receive did not drain inbox")
	}
}

func TestSendOutOfRange(t *testing.T) {
	net := lineNetwork(t, Config{}, 10, 3, 15)
	if err := net.Send(0, 2, "x"); err == nil {
		t.Error("send beyond radio range accepted")
	}
	if err := net.Send(99, 0, "x"); err == nil {
		t.Error("send from unknown node accepted")
	}
}

func TestBroadcastReachesAllNeighbors(t *testing.T) {
	net := lineNetwork(t, Config{}, 10, 3, 15)
	if err := net.Broadcast(1, 42); err != nil {
		t.Fatal(err)
	}
	net.Step()
	for _, id := range []NodeID{0, 2} {
		msgs, err := net.Receive(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) != 1 || msgs[0].Payload != 42 {
			t.Errorf("node %d messages = %+v", id, msgs)
		}
	}
	if msgs, _ := net.Receive(1); len(msgs) != 0 {
		t.Error("broadcaster received its own packet")
	}
}

func TestLossDropsPackets(t *testing.T) {
	net := lineNetwork(t, Config{Loss: 0.5, Seed: 1}, 10, 2, 15)
	const n = 1000
	for i := 0; i < n; i++ {
		if err := net.Send(0, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	net.Step()
	msgs, err := net.Receive(1)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(msgs)) / n
	if got < 0.4 || got > 0.6 {
		t.Errorf("delivery rate %v, want ~0.5", got)
	}
	sent, delivered, dropped := net.Stats()
	if sent != n || delivered+dropped != n {
		t.Errorf("stats inconsistent: %d %d %d", sent, delivered, dropped)
	}
}

func TestDelayJitter(t *testing.T) {
	net := lineNetwork(t, Config{MinDelay: 1, MaxDelay: 3, Seed: 2}, 10, 2, 15)
	const n = 300
	for i := 0; i < n; i++ {
		if err := net.Send(0, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	counts := make([]int, 4)
	for step := 1; step <= 3; step++ {
		net.Step()
		msgs, err := net.Receive(1)
		if err != nil {
			t.Fatal(err)
		}
		counts[step] = len(msgs)
	}
	total := counts[1] + counts[2] + counts[3]
	if total != n {
		t.Fatalf("delivered %d of %d within max delay", total, n)
	}
	for d := 1; d <= 3; d++ {
		if counts[d] == 0 {
			t.Errorf("no messages with delay %d; jitter not applied", d)
		}
	}
}

func TestStepMonotonicClock(t *testing.T) {
	net := lineNetwork(t, Config{}, 10, 2, 15)
	if net.Now() != 0 {
		t.Error("fresh network clock not 0")
	}
	net.Step()
	net.Step()
	if net.Now() != 2 {
		t.Errorf("Now = %d, want 2", net.Now())
	}
}

func TestPositionLookup(t *testing.T) {
	net := lineNetwork(t, Config{}, 10, 2, 15)
	p, err := net.Position(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.X != 10 {
		t.Errorf("position = %v", p)
	}
	if _, err := net.Position(9); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := net.Receive(9); err == nil {
		t.Error("Receive of unknown node accepted")
	}
}

func TestSetDown(t *testing.T) {
	net := lineNetwork(t, Config{}, 10, 3, 15)
	if err := net.SetDown(9, true); err == nil {
		t.Error("unknown node accepted")
	}
	if err := net.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	if !net.IsDown(1) || net.IsDown(0) {
		t.Error("IsDown wrong")
	}
	// Down nodes vanish from neighborhoods.
	n0, err := net.Neighbors(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(n0) != 0 {
		t.Errorf("Neighbors(0) = %v with node 1 down", n0)
	}
	// In-flight messages to a node that fails are dropped.
	if err := net.SetDown(1, false); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(0, 1, "x"); err != nil {
		t.Fatal(err)
	}
	if err := net.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	net.Step()
	if err := net.SetDown(1, false); err != nil {
		t.Fatal(err)
	}
	msgs, err := net.Receive(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Error("message delivered to a down node")
	}
	// Down senders cannot transmit.
	if err := net.SetDown(0, true); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(0, 1, "x"); err == nil {
		t.Error("down sender transmitted")
	}
}
