// Package netsim provides an in-memory packet-level radio network used
// by the protocol layer: nodes with positions and radio range,
// broadcast/unicast within the radio neighborhood, per-link loss and
// latency, and tick-driven delivery. It is the substrate on which the
// testbed's control-plane protocols (time sync, schedule dissemination,
// data collection) are reproduced.
package netsim

import (
	"errors"
	"fmt"
	"sort"

	"cool/internal/geometry"
	"cool/internal/stats"
)

// NodeID identifies a node in the radio network.
type NodeID int

// Message is one packet delivered to a node.
type Message struct {
	// From is the transmitting node.
	From NodeID
	// To is the destination (the receiving node; broadcasts are
	// expanded into one message per neighbor).
	To NodeID
	// Payload is the protocol-defined content.
	Payload any
	// SentAt and DeliveredAt are network ticks.
	SentAt, DeliveredAt int
}

// Config tunes the radio medium.
type Config struct {
	// Loss is the independent per-link drop probability in [0, 1).
	Loss float64
	// MinDelay and MaxDelay bound the per-packet delivery latency in
	// ticks (defaults 1 and 1: next-tick delivery).
	MinDelay, MaxDelay int
	// Seed drives loss and jitter.
	Seed uint64
}

func (c *Config) defaults() error {
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("netsim: loss %v outside [0,1)", c.Loss)
	}
	if c.MinDelay == 0 {
		c.MinDelay = 1
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = c.MinDelay
	}
	if c.MinDelay < 1 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("netsim: bad delay range [%d, %d]", c.MinDelay, c.MaxDelay)
	}
	return nil
}

type node struct {
	id    NodeID
	pos   geometry.Point
	radio float64
	inbox []Message
	down  bool
}

// Network is the simulated radio medium. It is not safe for concurrent
// use; the protocol layer drives it from a single goroutine, matching
// the deterministic-simulation idiom.
type Network struct {
	cfg     Config
	rng     *stats.RNG
	nodes   map[NodeID]*node
	order   []NodeID // deterministic iteration order
	pending map[int][]Message
	now     int
	// counters
	sent, delivered, dropped int
}

// New builds an empty network.
func New(cfg Config) (*Network, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	return &Network{
		cfg:     cfg,
		rng:     stats.NewRNG(cfg.Seed),
		nodes:   make(map[NodeID]*node),
		pending: make(map[int][]Message),
	}, nil
}

// AddNode registers a node with a position and radio range.
func (n *Network) AddNode(id NodeID, pos geometry.Point, radioRange float64) error {
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("netsim: duplicate node %d", id)
	}
	if radioRange <= 0 {
		return fmt.Errorf("netsim: node %d has non-positive radio range %v", id, radioRange)
	}
	n.nodes[id] = &node{id: id, pos: pos, radio: radioRange}
	n.order = append(n.order, id)
	sort.Slice(n.order, func(i, j int) bool { return n.order[i] < n.order[j] })
	return nil
}

// Now returns the current tick.
func (n *Network) Now() int { return n.now }

// NumNodes returns the number of registered nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Neighbors returns the nodes within radio range of id (symmetric links
// require both radios to reach; we use the transmitter's range, the
// usual unit-disk model).
func (n *Network) Neighbors(id NodeID) ([]NodeID, error) {
	src, ok := n.nodes[id]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown node %d", id)
	}
	if src.down {
		return nil, nil
	}
	var out []NodeID
	for _, other := range n.order {
		if other == id {
			continue
		}
		dst := n.nodes[other]
		if !dst.down && src.pos.Dist(dst.pos) <= src.radio {
			out = append(out, other)
		}
	}
	return out, nil
}

// SetDown marks a node failed (or recovered). A down node neither
// sends nor receives: its queued deliveries are silently dropped and it
// disappears from every neighborhood until brought back up.
func (n *Network) SetDown(id NodeID, down bool) error {
	nd, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	nd.down = down
	if down {
		nd.inbox = nil
	}
	return nil
}

// IsDown reports whether a node is currently failed.
func (n *Network) IsDown(id NodeID) bool {
	nd, ok := n.nodes[id]
	return ok && nd.down
}

// Connected reports whether the radio graph is connected (every node
// reachable from the first), a precondition for dissemination and
// collection to terminate.
func (n *Network) Connected() bool {
	if len(n.order) <= 1 {
		return true
	}
	seen := map[NodeID]bool{n.order[0]: true}
	queue := []NodeID{n.order[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		neigh, err := n.Neighbors(cur)
		if err != nil {
			return false
		}
		for _, nb := range neigh {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(seen) == len(n.order)
}

// enqueue schedules delivery of one message with loss and jitter.
func (n *Network) enqueue(m Message) {
	n.sent++
	if n.rng.Bernoulli(n.cfg.Loss) {
		n.dropped++
		return
	}
	delay := n.cfg.MinDelay
	if n.cfg.MaxDelay > n.cfg.MinDelay {
		delay += n.rng.Intn(n.cfg.MaxDelay - n.cfg.MinDelay + 1)
	}
	m.DeliveredAt = n.now + delay
	n.pending[m.DeliveredAt] = append(n.pending[m.DeliveredAt], m)
}

// Broadcast transmits a payload to every radio neighbor of from.
func (n *Network) Broadcast(from NodeID, payload any) error {
	neigh, err := n.Neighbors(from)
	if err != nil {
		return err
	}
	for _, to := range neigh {
		n.enqueue(Message{From: from, To: to, Payload: payload, SentAt: n.now})
	}
	return nil
}

// Send transmits a payload to a specific neighbor. It returns an error
// when the destination is not within radio range.
func (n *Network) Send(from, to NodeID, payload any) error {
	neigh, err := n.Neighbors(from)
	if err != nil {
		return err
	}
	for _, nb := range neigh {
		if nb == to {
			n.enqueue(Message{From: from, To: to, Payload: payload, SentAt: n.now})
			return nil
		}
	}
	return fmt.Errorf("netsim: node %d cannot reach %d", from, to)
}

// Step advances the network by one tick, moving due messages into their
// destinations' inboxes.
func (n *Network) Step() {
	n.now++
	due := n.pending[n.now]
	delete(n.pending, n.now)
	for _, m := range due {
		dst, ok := n.nodes[m.To]
		if !ok || dst.down {
			n.dropped++
			continue
		}
		dst.inbox = append(dst.inbox, m)
		n.delivered++
	}
}

// Receive drains and returns the inbox of a node.
func (n *Network) Receive(id NodeID) ([]Message, error) {
	nd, ok := n.nodes[id]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown node %d", id)
	}
	out := nd.inbox
	nd.inbox = nil
	return out, nil
}

// Stats returns cumulative (sent, delivered, dropped) packet counts.
// Sent counts per-receiver transmissions (a broadcast to k neighbors
// counts k).
func (n *Network) Stats() (sent, delivered, dropped int) {
	return n.sent, n.delivered, n.dropped
}

// ErrUnknownNode is a sentinel for lookups of unregistered nodes.
var ErrUnknownNode = errors.New("netsim: unknown node")

// Position returns a node's position.
func (n *Network) Position(id NodeID) (geometry.Point, error) {
	nd, ok := n.nodes[id]
	if !ok {
		return geometry.Point{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return nd.pos, nil
}
