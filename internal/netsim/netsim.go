// Package netsim provides an in-memory packet-level radio network used
// by the protocol layer: nodes with positions and radio range,
// broadcast/unicast within the radio neighborhood, per-link loss and
// latency, and tick-driven delivery. It is the substrate on which the
// testbed's control-plane protocols (time sync, schedule dissemination,
// data collection) are reproduced.
//
// # Layout
//
// Network is the flat batched core: nodes live in dense parallel slices
// indexed through a NodeID→index table, neighborhoods are served by the
// internal/geometry/grid spatial hash (a query inspects only the 3×3
// cell neighbourhood instead of scanning every node), and the pending
// store is a ring of per-tick flat message buckets bounded by MaxDelay,
// so Step is a single bucket drain with no map traffic and, in steady
// state, no per-message allocation. ReferenceNetwork retains the
// original map-based implementation; the differential harness holds the
// flat core to tick-for-tick identical delivery traces, counters, and
// RNG draws against it.
//
// # API
//
// New networks are built with NewNetwork and functional options
// (WithLoss, WithDelay, WithSeed); bulk fleets register through
// AddNodes. The hot delivery paths are Batch (one neighbor resolution
// and one RNG/loss sweep for a whole broadcast, zero allocations in
// steady state) and ReceiveInto (drain into a caller-owned buffer,
// zero allocations when capacity suffices). New/AddNode/Receive remain
// as thin compatibility wrappers.
package netsim

import (
	"errors"
	"fmt"
	"sort"

	"cool/internal/geometry"
	"cool/internal/geometry/grid"
	"cool/internal/stats"
)

// NodeID identifies a node in the radio network.
type NodeID int

// Message is one packet delivered to a node.
type Message struct {
	// From is the transmitting node.
	From NodeID
	// To is the destination (the receiving node; broadcasts are
	// expanded into one message per neighbor).
	To NodeID
	// Payload is the protocol-defined content.
	Payload any
	// SentAt and DeliveredAt are network ticks.
	SentAt, DeliveredAt int
}

// NodeSpec describes one node for bulk registration via AddNodes.
type NodeSpec struct {
	// ID identifies the node; IDs must be unique.
	ID NodeID
	// Pos is the node's position.
	Pos geometry.Point
	// Radio is the node's transmission range (> 0).
	Radio float64
}

// Config tunes the radio medium. Prefer the functional options of
// NewNetwork; Config remains for the deprecated New constructor.
type Config struct {
	// Loss is the independent per-link drop probability in [0, 1).
	Loss float64
	// MinDelay and MaxDelay bound the per-packet delivery latency in
	// ticks (defaults 1 and 1: next-tick delivery).
	MinDelay, MaxDelay int
	// Seed drives loss and jitter.
	Seed uint64
}

func (c *Config) defaults() error {
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("netsim: loss %v outside [0,1)", c.Loss)
	}
	if c.MinDelay == 0 {
		c.MinDelay = 1
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = c.MinDelay
	}
	if c.MinDelay < 1 || c.MaxDelay < c.MinDelay {
		return fmt.Errorf("netsim: bad delay range [%d, %d]", c.MinDelay, c.MaxDelay)
	}
	return nil
}

// Option configures a network built by NewNetwork.
type Option func(*Config)

// WithLoss sets the independent per-link drop probability in [0, 1).
func WithLoss(p float64) Option { return func(c *Config) { c.Loss = p } }

// WithDelay bounds the per-packet delivery latency to [min, max] ticks
// (min ≥ 1; packets are never delivered on the tick they are sent).
func WithDelay(min, max int) Option {
	return func(c *Config) { c.MinDelay, c.MaxDelay = min, max }
}

// WithSeed seeds the loss and jitter randomness.
func WithSeed(seed uint64) Option { return func(c *Config) { c.Seed = seed } }

// Network is the simulated radio medium: the flat batched core (see the
// package comment for the layout). It is not safe for concurrent use;
// the protocol layer drives it from a single goroutine, matching the
// deterministic-simulation idiom.
type Network struct {
	cfg Config
	rng *stats.RNG

	// Dense node storage, parallel slices in insertion order.
	ids   []NodeID
	pos   []geometry.Point
	radio []float64
	down  []bool
	inbox [][]Message
	idx   map[NodeID]int32 // NodeID → dense index

	// byID lists dense indices in ascending NodeID order; it defines
	// the deterministic neighborhood and BFS enumeration order.
	byID []int32

	// Spatial hash over node positions: item k of the index is the node
	// at dense index byID[k], every item carrying Reach = maxRadio so a
	// query point within any node's transmission range is guaranteed to
	// see that node among its candidates. nil marks the index stale
	// (nodes were added); it is rebuilt lazily on the next neighborhood
	// query.
	index    *grid.Index
	maxRadio float64
	gridBuf  []int32 // candidate scratch (grid item indices)
	neighBuf []int32 // neighbor scratch (dense indices, ascending NodeID)

	// ring is the pending store: bucket (t % len(ring)) holds the
	// messages due at tick t. len(ring) = MaxDelay+1 and MinDelay ≥ 1,
	// so an enqueue at tick now can never land in the bucket being
	// drained; buckets are truncated (not freed) on drain so steady
	// state appends into retained capacity.
	ring [][]Message
	now  int

	// counters
	sent, delivered, dropped int

	// Connected scratch
	visited []bool
	queue   []int32
}

// NewNetwork builds an empty network configured by options, e.g.
//
//	net, err := netsim.NewNetwork(netsim.WithLoss(0.2), netsim.WithSeed(7))
//
// The defaults are lossless next-tick delivery with seed 0.
func NewNetwork(opts ...Option) (*Network, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return newNetwork(cfg)
}

// New builds an empty network from a Config.
//
// Deprecated: use NewNetwork with WithLoss/WithDelay/WithSeed options.
func New(cfg Config) (*Network, error) { return newNetwork(cfg) }

func newNetwork(cfg Config) (*Network, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	return &Network{
		cfg:  cfg,
		rng:  stats.NewRNG(cfg.Seed),
		idx:  make(map[NodeID]int32),
		ring: make([][]Message, cfg.MaxDelay+1),
	}, nil
}

// validateSpec rejects a spec that cannot join the network.
func (n *Network) validateSpec(s NodeSpec) error {
	if _, ok := n.idx[s.ID]; ok {
		return fmt.Errorf("netsim: duplicate node %d", s.ID)
	}
	if s.Radio <= 0 {
		return fmt.Errorf("netsim: node %d has non-positive radio range %v", s.ID, s.Radio)
	}
	return nil
}

// appendNode appends a validated spec to the dense arrays (byID and the
// spatial index are the caller's responsibility).
func (n *Network) appendNode(s NodeSpec) int32 {
	di := int32(len(n.ids))
	n.ids = append(n.ids, s.ID)
	n.pos = append(n.pos, s.Pos)
	n.radio = append(n.radio, s.Radio)
	n.down = append(n.down, false)
	n.inbox = append(n.inbox, nil)
	n.idx[s.ID] = di
	if s.Radio > n.maxRadio {
		n.maxRadio = s.Radio
	}
	return di
}

// AddNode registers a single node with a position and radio range. The
// node is spliced into the sorted ID order in place (binary search +
// shift); bulk registration should prefer AddNodes, which sorts once.
func (n *Network) AddNode(id NodeID, pos geometry.Point, radioRange float64) error {
	s := NodeSpec{ID: id, Pos: pos, Radio: radioRange}
	if err := n.validateSpec(s); err != nil {
		return err
	}
	di := n.appendNode(s)
	at := sort.Search(len(n.byID), func(i int) bool { return n.ids[n.byID[i]] >= id })
	n.byID = append(n.byID, 0)
	copy(n.byID[at+1:], n.byID[at:])
	n.byID[at] = di
	n.index = nil
	return nil
}

// AddNodes bulk-registers a fleet. Validation happens before any
// mutation (the call is atomic: either every spec joins or none does),
// and the sorted ID order is rebuilt with a single sort instead of one
// insertion per node, making registration O(k log k) for k nodes.
func (n *Network) AddNodes(specs []NodeSpec) error {
	if len(specs) == 0 {
		return nil
	}
	seen := make(map[NodeID]struct{}, len(specs))
	for _, s := range specs {
		if err := n.validateSpec(s); err != nil {
			return err
		}
		if _, dup := seen[s.ID]; dup {
			return fmt.Errorf("netsim: duplicate node %d", s.ID)
		}
		seen[s.ID] = struct{}{}
	}
	for _, s := range specs {
		n.appendNode(s)
	}
	n.byID = n.byID[:0]
	for di := range n.ids {
		n.byID = append(n.byID, int32(di))
	}
	sort.Slice(n.byID, func(i, j int) bool { return n.ids[n.byID[i]] < n.ids[n.byID[j]] })
	n.index = nil
	return nil
}

// ensureIndex (re)builds the spatial hash after node additions. Items
// are enumerated in ascending NodeID order so grid candidates — which
// ascend by item index — map to ascending NodeIDs without re-sorting.
func (n *Network) ensureIndex() {
	if n.index != nil {
		return
	}
	items := make([]grid.Item, len(n.byID))
	for k, di := range n.byID {
		items[k] = grid.Item{Pos: grid.Point(n.pos[di]), Reach: n.maxRadio}
	}
	n.index = grid.Build(items)
}

// neighborIndices returns the dense indices of the up nodes within
// radio range of the (up) node at dense index si, ascending by NodeID.
// The returned slice aliases an internal scratch buffer: it is valid
// until the next neighborhood query.
func (n *Network) neighborIndices(si int32) []int32 {
	out := n.neighBuf[:0]
	if n.down[si] {
		n.neighBuf = out
		return out
	}
	n.ensureIndex()
	n.gridBuf = n.index.CandidatesInto(n.gridBuf, grid.Point(n.pos[si]))
	sp, sr := n.pos[si], n.radio[si]
	for _, k := range n.gridBuf {
		di := n.byID[k]
		if di == si || n.down[di] {
			continue
		}
		if sp.Dist(n.pos[di]) <= sr {
			out = append(out, di)
		}
	}
	n.neighBuf = out
	return out
}

// Now returns the current tick.
func (n *Network) Now() int { return n.now }

// NumNodes returns the number of registered nodes.
func (n *Network) NumNodes() int { return len(n.ids) }

// Neighbors returns the nodes within radio range of id (symmetric links
// require both radios to reach; we use the transmitter's range, the
// usual unit-disk model), ascending by node ID. A down node has no
// neighbors. The slice is freshly allocated; the hot paths (Batch,
// Connected) use the internal zero-alloc query instead.
func (n *Network) Neighbors(id NodeID) ([]NodeID, error) {
	si, ok := n.idx[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	neigh := n.neighborIndices(si)
	if len(neigh) == 0 {
		return nil, nil
	}
	out := make([]NodeID, len(neigh))
	for k, di := range neigh {
		out[k] = n.ids[di]
	}
	return out, nil
}

// SetDown marks a node failed (or recovered). A down node neither
// sends nor receives: its queued deliveries are silently dropped and it
// disappears from every neighborhood until brought back up.
func (n *Network) SetDown(id NodeID, down bool) error {
	di, ok := n.idx[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	n.down[di] = down
	if down {
		n.clearInbox(di)
	}
	return nil
}

// clearInbox empties a node's inbox, zeroing the vacated entries so the
// retained backing array does not pin payload references.
func (n *Network) clearInbox(di int32) {
	box := n.inbox[di]
	for i := range box {
		box[i] = Message{}
	}
	n.inbox[di] = box[:0]
}

// IsDown reports whether a node is currently failed.
func (n *Network) IsDown(id NodeID) bool {
	di, ok := n.idx[id]
	return ok && n.down[di]
}

// Connected reports whether the radio graph is connected (every node —
// including down ones — reachable from the lowest-ID node), a
// precondition for dissemination and collection to terminate. Down
// nodes relay nothing, so any down node in a multi-node network makes
// it disconnected.
func (n *Network) Connected() bool {
	nn := len(n.ids)
	if nn <= 1 {
		return true
	}
	if cap(n.visited) < nn {
		n.visited = make([]bool, nn)
	}
	n.visited = n.visited[:nn]
	for i := range n.visited {
		n.visited[i] = false
	}
	start := n.byID[0]
	n.queue = append(n.queue[:0], start)
	n.visited[start] = true
	reached := 1
	for head := 0; head < len(n.queue); head++ {
		cur := n.queue[head]
		for _, di := range n.neighborIndices(cur) {
			if !n.visited[di] {
				n.visited[di] = true
				reached++
				n.queue = append(n.queue, di)
			}
		}
	}
	return reached == nn
}

// enqueue schedules delivery of one message with loss and jitter. The
// RNG draw sequence (one Bernoulli per packet, one Intn only when the
// delay range is non-trivial) is the package contract: the reference
// implementation draws identically, which is what makes seeded runs of
// the two cores byte-comparable.
func (n *Network) enqueue(m Message) {
	n.sent++
	if n.rng.Bernoulli(n.cfg.Loss) {
		n.dropped++
		return
	}
	delay := n.cfg.MinDelay
	if n.cfg.MaxDelay > n.cfg.MinDelay {
		delay += n.rng.Intn(n.cfg.MaxDelay - n.cfg.MinDelay + 1)
	}
	m.DeliveredAt = n.now + delay
	slot := m.DeliveredAt % len(n.ring)
	n.ring[slot] = append(n.ring[slot], m)
}

// Batch transmits a payload to every radio neighbor of from in one
// flat sweep — a single neighborhood resolution and a single RNG/loss
// pass over the whole broadcast — and returns how many packets were
// enqueued (the sent count; lost packets still count as sent). In
// steady state Batch performs no allocations: the neighbor scratch and
// the ring buckets retain their capacity across ticks.
func (n *Network) Batch(from NodeID, payload any) (int, error) {
	si, ok := n.idx[from]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownNode, from)
	}
	neigh := n.neighborIndices(si)
	for _, di := range neigh {
		n.enqueue(Message{From: from, To: n.ids[di], Payload: payload, SentAt: n.now})
	}
	return len(neigh), nil
}

// ReserveReach widens the spatial index's query reach to at least r,
// as if a node with radio range r were registered. Sharded simulations
// use it so that BatchFrom injections from foreign transmitters — whose
// radio range may exceed every local node's — stay on the O(local)
// grid-query path instead of the linear fallback. Idempotent; a no-op
// when r does not exceed the current maximum radio range.
func (n *Network) ReserveReach(r float64) {
	if r > n.maxRadio {
		n.maxRadio = r
		n.index = nil
	}
}

// BatchFrom injects a broadcast from an external transmitter that is
// not registered in this network: every up node within radio of pos
// receives the payload with the same loss/delay treatment as a local
// Batch, attributed to the given source ID. It returns the number of
// packets enqueued. Registered nodes with the transmitter's own ID are
// skipped (matching Batch's self-exclusion), so replaying a node's
// broadcast into a partition that also holds it cannot double-deliver.
//
// The sharded radio core uses BatchFrom for halo exchange: a border
// node's broadcast is executed locally in its home partition via Batch
// and replayed into each adjacent partition via BatchFrom, which keeps
// the summed packet counters exactly equal to a global network's —
// every receiver is registered in exactly one partition. When radio
// exceeds the index reach (see ReserveReach) the query degrades to a
// linear scan over all nodes; with a reserved reach it stays O(local
// density). In steady state the call performs no allocations.
func (n *Network) BatchFrom(from NodeID, pos geometry.Point, radio float64, payload any) int {
	out := n.neighBuf[:0]
	if radio > 0 && radio <= n.maxRadio {
		n.ensureIndex()
		n.gridBuf = n.index.CandidatesInto(n.gridBuf, grid.Point(pos))
		for _, k := range n.gridBuf {
			di := n.byID[k]
			if n.down[di] || n.ids[di] == from {
				continue
			}
			if pos.Dist(n.pos[di]) <= radio {
				out = append(out, di)
			}
		}
	} else if radio > 0 {
		for _, di := range n.byID {
			if n.down[di] || n.ids[di] == from {
				continue
			}
			if pos.Dist(n.pos[di]) <= radio {
				out = append(out, di)
			}
		}
	}
	n.neighBuf = out
	for _, di := range out {
		n.enqueue(Message{From: from, To: n.ids[di], Payload: payload, SentAt: n.now})
	}
	return len(out)
}

// Broadcast transmits a payload to every radio neighbor of from. It is
// a thin wrapper over Batch.
func (n *Network) Broadcast(from NodeID, payload any) error {
	_, err := n.Batch(from, payload)
	return err
}

// Send transmits a payload to a specific neighbor. It returns an error
// when the destination is not within radio range (or either endpoint is
// down). Unlike the reference's neighborhood scan, the check is a
// single O(1) distance test.
func (n *Network) Send(from, to NodeID, payload any) error {
	si, ok := n.idx[from]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownNode, from)
	}
	di, ok := n.idx[to]
	if !ok || di == si || n.down[si] || n.down[di] ||
		n.pos[si].Dist(n.pos[di]) > n.radio[si] {
		return fmt.Errorf("netsim: node %d cannot reach %d", from, to)
	}
	n.enqueue(Message{From: from, To: to, Payload: payload, SentAt: n.now})
	return nil
}

// Step advances the network by one tick: a single drain of the due ring
// bucket into the destinations' inboxes, in enqueue order.
func (n *Network) Step() {
	n.now++
	slot := n.now % len(n.ring)
	due := n.ring[slot]
	for i, m := range due {
		di, ok := n.idx[m.To]
		if !ok || n.down[di] {
			n.dropped++
		} else {
			n.inbox[di] = append(n.inbox[di], m)
			n.delivered++
		}
		due[i] = Message{} // release the payload reference
	}
	n.ring[slot] = due[:0]
}

// ReceiveInto drains the inbox of a node into buf[:0] and returns the
// extended slice. When buf has sufficient capacity the call performs no
// allocations; the internal inbox retains its capacity (entries are
// zeroed so payload references are released). Delivery order is the
// enqueue order of the due ticks.
func (n *Network) ReceiveInto(id NodeID, buf []Message) ([]Message, error) {
	di, ok := n.idx[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	buf = append(buf[:0], n.inbox[di]...)
	n.clearInbox(di)
	return buf, nil
}

// Receive drains and returns the inbox of a node. It is a thin wrapper
// over ReceiveInto that allocates a fresh slice (nil when the inbox is
// empty); hot paths should call ReceiveInto with a reused buffer.
func (n *Network) Receive(id NodeID) ([]Message, error) {
	return n.ReceiveInto(id, nil)
}

// Stats returns cumulative (sent, delivered, dropped) packet counts.
// Sent counts per-receiver transmissions (a broadcast to k neighbors
// counts k).
func (n *Network) Stats() (sent, delivered, dropped int) {
	return n.sent, n.delivered, n.dropped
}

// ErrUnknownNode is a sentinel for lookups of unregistered nodes.
var ErrUnknownNode = errors.New("netsim: unknown node")

// Position returns a node's position.
func (n *Network) Position(id NodeID) (geometry.Point, error) {
	di, ok := n.idx[id]
	if !ok {
		return geometry.Point{}, fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return n.pos[di], nil
}
