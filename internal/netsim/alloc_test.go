package netsim

import (
	"testing"
	"time"

	"cool/internal/geometry"
	"cool/internal/stats"
)

// buildFleet registers n nodes on a jittered grid with the given radio
// range via AddNodes and returns the network.
func buildFleet(t testing.TB, n int, radioRange float64, opts ...Option) *Network {
	t.Helper()
	net, err := NewNetwork(opts...)
	if err != nil {
		t.Fatal(err)
	}
	net.AddNodesGrid(t, n, radioRange)
	return net
}

// AddNodesGrid is a test helper placing n nodes on a √n×√n grid with
// 10-unit spacing.
func (n *Network) AddNodesGrid(t testing.TB, count int, radioRange float64) {
	t.Helper()
	side := 1
	for side*side < count {
		side++
	}
	specs := make([]NodeSpec, count)
	for i := range specs {
		specs[i] = NodeSpec{
			ID:    NodeID(i),
			Pos:   geometry.Point{X: float64(i%side) * 10, Y: float64(i/side) * 10},
			Radio: radioRange,
		}
	}
	if err := n.AddNodes(specs); err != nil {
		t.Fatal(err)
	}
}

// TestReceiveIntoAllocations is the allocation-regression gate for the
// delivery drain: with a capacity-sufficient caller buffer, the
// send→step→drain cycle must not allocate at all in steady state —
// the ring buckets, inboxes, and the caller buffer all retain their
// capacity across ticks.
func TestReceiveIntoAllocations(t *testing.T) {
	net := buildFleet(t, 2, 15)
	payload := any("pkt")
	buf := make([]Message, 0, 16)
	// One warm cycle so every backing array reaches steady-state size.
	cycle := func() {
		for k := 0; k < 8; k++ {
			if err := net.Send(0, 1, payload); err != nil {
				t.Fatal(err)
			}
		}
		net.Step()
		var err error
		buf, err = net.ReceiveInto(1, buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != 8 {
			t.Fatalf("delivered %d of 8", len(buf))
		}
	}
	cycle()
	if a := testing.AllocsPerRun(200, cycle); a != 0 {
		t.Errorf("Send/Step/ReceiveInto cycle allocated %v times per run, want 0", a)
	}
}

// TestBatchAllocations gates the broadcast hot path: after warmup, a
// whole-fleet Batch round (every node broadcasts, one Step, every inbox
// drained) performs zero allocations — the neighbor scratch, the grid
// candidate buffer, the ring buckets, and the inboxes are all reused.
func TestBatchAllocations(t *testing.T) {
	const n = 64
	net := buildFleet(t, n, 15, WithLoss(0.2), WithSeed(7))
	payload := any("beacon")
	buf := make([]Message, 0, 1024)
	round := func() {
		for id := 0; id < n; id++ {
			if _, err := net.Batch(NodeID(id), payload); err != nil {
				t.Fatal(err)
			}
		}
		net.Step()
		for id := 0; id < n; id++ {
			var err error
			buf, err = net.ReceiveInto(NodeID(id), buf)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	round() // warm every bucket and inbox
	if a := testing.AllocsPerRun(100, round); a != 0 {
		t.Errorf("Batch round allocated %v times per run, want 0", a)
	}
}

// TestAddNodesBulkBudget is the regression gate for the bulk
// registration bug: AddNode used to re-sort the entire order slice on
// every insertion (O(n² log n) for a fleet of n). Registering 10⁴
// nodes through AddNodes (sort once) and through repeated AddNode
// (in-place insertion) must both complete in interactive time; the
// budgets are generous multiples of the measured cost so the gate only
// trips on an algorithmic regression.
func TestAddNodesBulkBudget(t *testing.T) {
	const n = 10000
	rng := stats.NewRNG(42)
	perm := rng.Perm(n) // shuffled IDs so the single sort actually works
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{
			ID:    NodeID(perm[i]),
			Pos:   geometry.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Radio: 25,
		}
	}

	start := time.Now()
	net, err := NewNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddNodes(specs); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("AddNodes(%d) took %v, budget 2s", n, elapsed)
	}
	if net.NumNodes() != n {
		t.Fatalf("registered %d of %d", net.NumNodes(), n)
	}
	// byID must be ascending after the bulk sort.
	for k := 1; k < len(net.byID); k++ {
		if net.ids[net.byID[k-1]] >= net.ids[net.byID[k]] {
			t.Fatalf("byID not strictly ascending at %d", k)
		}
	}

	// The incremental path stays in budget too (in-place insertion, no
	// per-insert full sort).
	start = time.Now()
	one, err := NewNetwork()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range specs {
		if err := one.AddNode(s.ID, s.Pos, s.Radio); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("%d AddNode calls took %v, budget 5s", n, elapsed)
	}

	// Both registration orders define the same neighborhood enumeration.
	probe := specs[n/2].ID
	a, err := net.Neighbors(probe)
	if err != nil {
		t.Fatal(err)
	}
	b, err := one.Neighbors(probe)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("bulk vs incremental neighborhoods differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bulk vs incremental neighborhoods differ at %d: %v vs %v", i, a[i], b[i])
		}
	}

	// Allocation budget: bulk registration allocates O(log n) slice
	// growths plus the ID map, far below one allocation per node.
	fresh := make([]NodeSpec, n)
	copy(fresh, specs)
	if a := testing.AllocsPerRun(3, func() {
		net, err := NewNetwork()
		if err != nil {
			t.Fatal(err)
		}
		if err := net.AddNodes(fresh); err != nil {
			t.Fatal(err)
		}
	}); a > n/2 {
		t.Errorf("AddNodes(%d) allocated %v times per run, want ≤ %d", n, a, n/2)
	}
}

// BenchmarkNetsimBatch measures the flat core's broadcast round on a
// 1024-node fleet: every node Batch-broadcasts, one Step, every inbox
// drained through ReceiveInto.
func BenchmarkNetsimBatch(b *testing.B) {
	const n = 1024
	net := buildFleet(b, n, 15, WithLoss(0.1), WithSeed(1))
	payload := any("beacon")
	buf := make([]Message, 0, 4096)
	packets := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := 0; id < n; id++ {
			sent, err := net.Batch(NodeID(id), payload)
			if err != nil {
				b.Fatal(err)
			}
			packets += sent
		}
		net.Step()
		for id := 0; id < n; id++ {
			var err error
			buf, err = net.ReceiveInto(NodeID(id), buf)
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(packets)/float64(b.N), "packets/op")
}

// BenchmarkNetsimReference is the same round on the retained map-based
// reference network; the ratio to BenchmarkNetsimBatch is the headline
// of `coolbench -fig netsim`.
func BenchmarkNetsimReference(b *testing.B) {
	const n = 1024
	net, err := NewReference(Config{Loss: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	side := 32
	for i := 0; i < n; i++ {
		pos := geometry.Point{X: float64(i%side) * 10, Y: float64(i/side) * 10}
		if err := net.AddNode(NodeID(i), pos, 15); err != nil {
			b.Fatal(err)
		}
	}
	payload := any("beacon")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for id := 0; id < n; id++ {
			if err := net.Broadcast(NodeID(id), payload); err != nil {
				b.Fatal(err)
			}
		}
		net.Step()
		for id := 0; id < n; id++ {
			if _, err := net.Receive(NodeID(id)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkNetsimAddNodes measures bulk registration of 10⁴ nodes.
func BenchmarkNetsimAddNodes(b *testing.B) {
	const n = 10000
	specs := make([]NodeSpec, n)
	for i := range specs {
		specs[i] = NodeSpec{
			ID:    NodeID(i),
			Pos:   geometry.Point{X: float64(i%100) * 10, Y: float64(i/100) * 10},
			Radio: 25,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, err := NewNetwork()
		if err != nil {
			b.Fatal(err)
		}
		if err := net.AddNodes(specs); err != nil {
			b.Fatal(err)
		}
	}
}
