package netsim

import (
	"fmt"
	"testing"
	"testing/quick"

	"cool/internal/geometry"
	"cool/internal/stats"
)

// This file is the differential harness behind the flat-core rewrite:
// the flat batched Network and the retained map-based ReferenceNetwork
// are driven in lockstep through identical operation scripts and held
// to tick-for-tick identical delivery traces (every field of every
// received message), identical counters, identical Connected results,
// and identical RNG consumption (proven by drawing from both
// generators after the run).

// diffPair couples the two implementations under one op script.
type diffPair struct {
	flat *Network
	ref  *ReferenceNetwork
	ids  []NodeID // registered IDs, ascending
	fbuf []Message
	rbuf []Message
}

func newDiffPair(t testing.TB, cfg Config) *diffPair {
	t.Helper()
	flat, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewReference(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &diffPair{flat: flat, ref: ref}
}

func (d *diffPair) addNode(t testing.TB, id NodeID, pos geometry.Point, radio float64) {
	t.Helper()
	errF := d.flat.AddNode(id, pos, radio)
	errR := d.ref.AddNode(id, pos, radio)
	if (errF == nil) != (errR == nil) {
		t.Fatalf("AddNode(%d) diverged: flat=%v ref=%v", id, errF, errR)
	}
	if errF == nil {
		d.ids = append(d.ids, 0)
		at := len(d.ids) - 1
		for at > 0 && d.ids[at-1] > id {
			d.ids[at] = d.ids[at-1]
			at--
		}
		d.ids[at] = id
	}
}

func (d *diffPair) addNodes(t testing.TB, specs []NodeSpec) {
	t.Helper()
	errF := d.flat.AddNodes(specs)
	errR := d.ref.AddNodes(specs)
	if (errF == nil) != (errR == nil) {
		t.Fatalf("AddNodes diverged: flat=%v ref=%v", errF, errR)
	}
	if errF == nil {
		for _, s := range specs {
			d.ids = append(d.ids, s.ID)
		}
		for i := 1; i < len(d.ids); i++ {
			for j := i; j > 0 && d.ids[j-1] > d.ids[j]; j-- {
				d.ids[j-1], d.ids[j] = d.ids[j], d.ids[j-1]
			}
		}
	}
}

func (d *diffPair) batch(t testing.TB, from NodeID, payload any) {
	t.Helper()
	nF, errF := d.flat.Batch(from, payload)
	nR, errR := d.ref.Batch(from, payload)
	if (errF == nil) != (errR == nil) || nF != nR {
		t.Fatalf("Batch(%d) diverged: flat=(%d,%v) ref=(%d,%v)", from, nF, errF, nR, errR)
	}
}

func (d *diffPair) send(t testing.TB, from, to NodeID, payload any) {
	t.Helper()
	errF := d.flat.Send(from, to, payload)
	errR := d.ref.Send(from, to, payload)
	if (errF == nil) != (errR == nil) {
		t.Fatalf("Send(%d→%d) diverged: flat=%v ref=%v", from, to, errF, errR)
	}
}

func (d *diffPair) setDown(t testing.TB, id NodeID, down bool) {
	t.Helper()
	errF := d.flat.SetDown(id, down)
	errR := d.ref.SetDown(id, down)
	if (errF == nil) != (errR == nil) {
		t.Fatalf("SetDown(%d,%v) diverged: flat=%v ref=%v", id, down, errF, errR)
	}
}

// step advances both networks one tick and compares every node's
// drained inbox message for message, field for field.
func (d *diffPair) step(t testing.TB) {
	t.Helper()
	d.flat.Step()
	d.ref.Step()
	if d.flat.Now() != d.ref.Now() {
		t.Fatalf("clocks diverged: flat=%d ref=%d", d.flat.Now(), d.ref.Now())
	}
	for _, id := range d.ids {
		var errF, errR error
		d.fbuf, errF = d.flat.ReceiveInto(id, d.fbuf)
		d.rbuf, errR = d.ref.ReceiveInto(id, d.rbuf)
		if (errF == nil) != (errR == nil) {
			t.Fatalf("Receive(%d) diverged: flat=%v ref=%v", id, errF, errR)
		}
		if len(d.fbuf) != len(d.rbuf) {
			t.Fatalf("tick %d node %d: flat delivered %d, ref %d",
				d.flat.Now(), id, len(d.fbuf), len(d.rbuf))
		}
		for i := range d.fbuf {
			if d.fbuf[i] != d.rbuf[i] {
				t.Fatalf("tick %d node %d message %d: flat=%+v ref=%+v",
					d.flat.Now(), id, i, d.fbuf[i], d.rbuf[i])
			}
		}
	}
}

// audit compares the cumulative counters, the neighborhoods of every
// node, and connectivity.
func (d *diffPair) audit(t testing.TB) {
	t.Helper()
	sF, dF, pF := d.flat.Stats()
	sR, dR, pR := d.ref.Stats()
	if sF != sR || dF != dR || pF != pR {
		t.Fatalf("stats diverged: flat=(%d,%d,%d) ref=(%d,%d,%d)", sF, dF, pF, sR, dR, pR)
	}
	if cF, cR := d.flat.Connected(), d.ref.Connected(); cF != cR {
		t.Fatalf("Connected diverged: flat=%v ref=%v", cF, cR)
	}
	for _, id := range d.ids {
		nF, errF := d.flat.Neighbors(id)
		nR, errR := d.ref.Neighbors(id)
		if (errF == nil) != (errR == nil) || len(nF) != len(nR) {
			t.Fatalf("Neighbors(%d) diverged: flat=%v(%v) ref=%v(%v)", id, nF, errF, nR, errR)
		}
		for i := range nF {
			if nF[i] != nR[i] {
				t.Fatalf("Neighbors(%d) diverged at %d: flat=%v ref=%v", id, i, nF, nR)
			}
		}
	}
}

// auditRNG proves both cores consumed their generators identically: the
// streams are seeded the same, so the next draws agree iff the same
// number of draws happened in the same order. Destructive — call last.
func (d *diffPair) auditRNG(t testing.TB) {
	t.Helper()
	if f, r := d.flat.rng.Uint64(), d.ref.rng.Uint64(); f != r {
		t.Fatalf("RNG streams diverged: flat next=%#x ref next=%#x", f, r)
	}
}

// runScript exercises a seeded random workload against both cores.
func runScript(t testing.TB, seed uint64, nodes, ticks int, cfg Config) {
	t.Helper()
	rng := stats.NewRNG(seed)
	d := newDiffPair(t, cfg)

	// Bulk fleet with mixed radio ranges; a degenerate spec every now
	// and then exercises validation parity.
	specs := make([]NodeSpec, 0, nodes)
	for i := 0; i < nodes; i++ {
		specs = append(specs, NodeSpec{
			ID:    NodeID(i),
			Pos:   geometry.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200},
			Radio: 20 + rng.Float64()*40,
		})
	}
	d.addNodes(t, specs)
	d.audit(t)

	payload := 0
	for tick := 0; tick < ticks; tick++ {
		for k := rng.Intn(4); k > 0; k-- {
			d.batch(t, NodeID(rng.Intn(nodes)), payload)
			payload++
		}
		for k := rng.Intn(3); k > 0; k-- {
			d.send(t, NodeID(rng.Intn(nodes)), NodeID(rng.Intn(nodes)), payload)
			payload++
		}
		if rng.Intn(5) == 0 {
			id := NodeID(rng.Intn(nodes))
			d.setDown(t, id, !d.flat.IsDown(id))
		}
		if rng.Intn(7) == 0 {
			// Mid-run registration invalidates the flat spatial index.
			id := NodeID(1000 + len(d.ids))
			d.addNode(t, id, geometry.Point{X: rng.Float64() * 200, Y: rng.Float64() * 200}, 25)
		}
		d.step(t)
		if tick%8 == 0 {
			d.audit(t)
		}
	}
	// Drain any jittered tail before the final audit.
	for i := 0; i < cfg.MaxDelay+1; i++ {
		d.step(t)
	}
	d.audit(t)
	d.auditRNG(t)
}

func TestDifferentialSeeded(t *testing.T) {
	cfgs := []Config{
		{},                                        // lossless next-tick
		{Loss: 0.3, Seed: 11},                     // lossy
		{Loss: 0.15, MinDelay: 1, MaxDelay: 4},    // jitter
		{Loss: 0.5, MinDelay: 2, MaxDelay: 6, Seed: 5}, // lossy + wide jitter
	}
	for ci, cfg := range cfgs {
		for seed := uint64(1); seed <= 4; seed++ {
			cfg := cfg
			t.Run(fmt.Sprintf("cfg%d/seed%d", ci, seed), func(t *testing.T) {
				runScript(t, seed, 40, 60, cfg)
			})
		}
	}
}

// TestDifferentialProperty lets testing/quick choose the seed, fleet
// size, and medium parameters.
func TestDifferentialProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep skipped in -short mode")
	}
	f := func(seed uint64, nRaw, lossRaw, jitterRaw uint8) bool {
		nodes := 5 + int(nRaw)%60
		cfg := Config{
			Loss:     float64(lossRaw%90) / 100,
			MinDelay: 1,
			MaxDelay: 1 + int(jitterRaw)%5,
			Seed:     seed * 7,
		}
		runScript(t, seed, nodes, 30, cfg)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialDenseCluster packs every node into grid-cell-sized
// quarters so the spatial index degenerates toward a single bucket —
// the regime where candidate pruning does nothing and ordering bugs
// would surface.
func TestDifferentialDenseCluster(t *testing.T) {
	d := newDiffPair(t, Config{Loss: 0.2, Seed: 3})
	specs := make([]NodeSpec, 30)
	for i := range specs {
		specs[i] = NodeSpec{
			ID:    NodeID(i * 3), // sparse, unordered-friendly IDs
			Pos:   geometry.Point{X: float64(i % 2), Y: float64(i % 3)},
			Radio: 50, // everyone hears everyone
		}
	}
	d.addNodes(t, specs)
	for tick := 0; tick < 20; tick++ {
		d.batch(t, specs[tick%len(specs)].ID, tick)
		d.step(t)
	}
	d.audit(t)
	d.auditRNG(t)
}

// TestDifferentialCoincidentNodes stacks nodes on the same point
// (distance 0 edges) and includes a far-away island.
func TestDifferentialCoincidentNodes(t *testing.T) {
	d := newDiffPair(t, Config{Seed: 9})
	d.addNodes(t, []NodeSpec{
		{ID: 2, Pos: geometry.Point{X: 5, Y: 5}, Radio: 10},
		{ID: 0, Pos: geometry.Point{X: 5, Y: 5}, Radio: 10},
		{ID: 1, Pos: geometry.Point{X: 5, Y: 5}, Radio: 10},
		{ID: 3, Pos: geometry.Point{X: 1e6, Y: 1e6}, Radio: 10}, // island
	})
	for tick := 0; tick < 6; tick++ {
		d.batch(t, NodeID(tick%4), tick)
		d.send(t, 0, 1, tick)
		d.send(t, 0, 3, tick) // unreachable: error parity
		d.step(t)
	}
	d.audit(t)
	d.auditRNG(t)
}
