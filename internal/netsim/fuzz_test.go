package netsim

import (
	"testing"

	"cool/internal/geometry"
)

// FuzzNetsimDiff interprets the fuzz input as an operation script and
// replays it against both the flat core and the reference network,
// requiring identical delivery traces, counters, neighborhoods, and RNG
// consumption. The first bytes pick the medium (loss, jitter, seed) and
// the fleet; the rest drive broadcasts, unicasts, failures, recoveries,
// late registrations, and ticks.
func FuzzNetsimDiff(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{5, 0, 0, 1, 0x10, 0x21, 0x32, 0x43, 0x54, 0x65})
	f.Add([]byte{20, 40, 3, 9, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88})
	f.Add([]byte{3, 89, 5, 77, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}

		nodes := 2 + int(next())%24
		cfg := Config{
			Loss:     float64(next()%90) / 100,
			MinDelay: 1,
			MaxDelay: 1 + int(next())%5,
			Seed:     uint64(next()),
		}
		d := newDiffPair(t, cfg)
		// Fleet on a jittered grid: positions derive from the node index
		// so scripts stay short; a few radios are large enough to span
		// the field, a few barely reach a neighbor.
		specs := make([]NodeSpec, nodes)
		for i := range specs {
			radio := 12.0
			if i%5 == 0 {
				radio = 200
			} else if i%7 == 0 {
				radio = 10.01
			}
			specs[i] = NodeSpec{
				ID:    NodeID(i),
				Pos:   geometry.Point{X: float64(i%6) * 10, Y: float64(i/6) * 10},
				Radio: radio,
			}
		}
		d.addNodes(t, specs)

		steps := 0
		for len(data) > 0 && steps < 64 {
			op := next()
			switch op % 8 {
			case 0, 1:
				d.batch(t, NodeID(int(next())%nodes), int(op))
			case 2, 3:
				d.send(t, NodeID(int(next())%nodes), NodeID(int(next())%nodes), int(op))
			case 4:
				id := NodeID(int(next()) % nodes)
				d.setDown(t, id, !d.flat.IsDown(id))
			case 5:
				// Late registration (possibly duplicate: parity either way).
				id := NodeID(int(next()) % (nodes + 8))
				d.addNode(t, id, geometry.Point{X: float64(next()), Y: float64(next())}, 15)
				if int(id) >= nodes {
					// keep the modulus in range for later ops
					nodes = int(id) + 1
				}
			case 6, 7:
				d.step(t)
				steps++
			}
		}
		// Flush the in-flight tail, then the full audit.
		for i := 0; i <= cfg.MaxDelay; i++ {
			d.step(t)
		}
		d.audit(t)
		d.auditRNG(t)
	})
}
