package controlplane

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"cool/internal/core"
)

// Regenerate the golden wire corpus and the committed fuzz seeds:
//
//	go test ./internal/controlplane -run TestGoldenWire -update
var updateGolden = flag.Bool("update", false, "rewrite the golden wire corpus and fuzz seed corpus")

const goldenWirePath = "testdata/golden_wire.json"

type goldenEntry struct {
	Name     string `json:"name"`
	FrameHex string `json:"frame_hex"`
}

// goldenFrames is the fixed message set whose encodings the corpus
// pins byte-for-byte: the handshake (including version negotiation
// and its rejection), every request and response kind, and every
// typed error code. Changing any encoding is a wire-format break and
// must show up as a diff here.
func goldenFrames(t *testing.T) []struct {
	name  string
	frame Frame
} {
	t.Helper()
	mk := func(name string, ft FrameType, v any) struct {
		name  string
		frame Frame
	} {
		f, err := encodeFrame(Version1, ft, v)
		if err != nil {
			t.Fatalf("encoding golden %s: %v", name, err)
		}
		return struct {
			name  string
			frame Frame
		}{name, f}
	}
	spec := DeploymentSpec{
		Rho: 3,
		Sensors: []SensorSpec{
			{X: 10, Y: 20, Range: 15},
			{X: 35.5, Y: 40, Range: 15},
		},
		Targets: []TargetSpec{{X: 25, Y: 30, Weight: 2}},
	}
	placement, err := core.NewSchedule(core.ModePlacement, 4, []int{0, 3, 1, -1})
	if err != nil {
		t.Fatalf("golden placement schedule: %v", err)
	}
	removal, err := core.NewSchedule(core.ModeRemoval, 3, []int{0, 2, -1})
	if err != nil {
		t.Fatalf("golden removal schedule: %v", err)
	}
	gap := 0.125
	utility := 6.5

	out := []struct {
		name  string
		frame Frame
	}{
		mk("hello", FrameHello, &Hello{MaxVersion: MaxVersion, Client: "coolctl/1.0"}),
		mk("hello-future-client", FrameHello, &Hello{MaxVersion: MaxVersion + 7, Client: "coolctl/2.0"}),
		mk("hello-ack", FrameHelloAck, &HelloAck{Version: Version1, Server: "coold/1.0.0"}),
		mk("request-submit", FrameRequest, &Request{Op: OpSubmit, Tenant: "acme",
			Submit: &SubmitRequest{Name: "field-a", Spec: spec}}),
		mk("request-submit-child", FrameRequest, &Request{Op: OpSubmit, Tenant: "acme",
			Submit: &SubmitRequest{Name: "field-a-v2", Parent: "deadbeef", Spec: spec}}),
		mk("request-plan", FrameRequest, &Request{Op: OpPlan, Tenant: "acme",
			Plan: &PlanRequest{Fingerprint: "deadbeef"}}),
		mk("request-plan-parallel", FrameRequest, &Request{Op: OpPlan, Tenant: "acme",
			Plan: &PlanRequest{Fingerprint: "deadbeef", Engine: EngineParallel, Workers: 4}}),
		mk("request-plan-lifetime", FrameRequest, &Request{Op: OpPlan, Tenant: "acme",
			Plan: &PlanRequest{Fingerprint: "deadbeef", Engine: EngineStripCover, Objective: ObjectiveLifetime}}),
		mk("request-replan-kill", FrameRequest, &Request{Op: OpReplan, Tenant: "acme",
			Replan: &ReplanRequest{Fingerprint: "deadbeef", Op: ReplanKill, IDs: []int{3, 17, 29}, WithGap: true}}),
		mk("request-replan-deploy", FrameRequest, &Request{Op: OpReplan, Tenant: "acme",
			Replan: &ReplanRequest{Fingerprint: "deadbeef", Op: ReplanDeploy, IDs: []int{17}, WithSchedule: true}}),
		mk("request-replan-drift", FrameRequest, &Request{Op: OpReplan, Tenant: "acme",
			Replan: &ReplanRequest{Fingerprint: "deadbeef", Op: ReplanDrift, Rho: 0.5}}),
		mk("request-query-schedule", FrameRequest, &Request{Op: OpQuery, Tenant: "acme",
			Query: &QueryRequest{Fingerprint: "deadbeef", What: QuerySchedule}}),
		mk("request-query-status", FrameRequest, &Request{Op: OpQuery, Tenant: "acme",
			Query: &QueryRequest{Fingerprint: "deadbeef", What: QueryStatus}}),
		mk("request-list", FrameRequest, &Request{Op: OpList, Tenant: "acme", List: &ListRequest{}}),
		mk("request-control-suspend", FrameRequest, &Request{Op: OpControl, Tenant: "acme",
			Control: &ControlRequest{Op: ControlSuspend, Fingerprint: "deadbeef"}}),
		mk("request-control-limits", FrameRequest, &Request{Op: OpControl, Tenant: "acme",
			Control: &ControlRequest{Op: ControlLimits, Limits: &Limits{MaxSensors: 1000}}}),
		mk("response-submit", FrameResponse, &Response{Op: OpSubmit,
			Submit: &SubmitResponse{Fingerprint: "deadbeef", Seq: 7, Sensors: 2, Targets: 1}}),
		mk("response-plan-placement", FrameResponse, &Response{Op: OpPlan,
			Plan: &PlanResponse{Engine: EngineIncremental, Schedule: placement, Utility: utility, Mode: "placement", Slots: 4}}),
		mk("response-plan-removal", FrameResponse, &Response{Op: OpPlan,
			Plan: &PlanResponse{Engine: EngineGreedy, Schedule: removal, Utility: utility, Mode: "removal", Slots: 3}}),
		mk("response-plan-lifetime", FrameResponse, &Response{Op: OpPlan,
			Plan: &PlanResponse{Engine: EngineStripCover, Objective: ObjectiveLifetime,
				Lifetime: &LifetimePlanInfo{Lifetime: 3, Horizon: 8, Groups: 2,
					ActiveSlots: [][]int{{0}, {1}, {0}}}}}),
		mk("response-replan", FrameResponse, &Response{Op: OpReplan,
			Replan: &ReplanResponse{Changed: 3, Dirty: 11, Rounds: 2, Moves: 4,
				UtilityBefore: 7.25, Utility: 6.5, Gap: &gap, Schedule: placement}}),
		mk("response-replan-full", FrameResponse, &Response{Op: OpReplan,
			Replan: &ReplanResponse{Changed: 40, Dirty: 40, Full: true, UtilityBefore: 7.25, Utility: 6.5}}),
		mk("response-query-utility", FrameResponse, &Response{Op: OpQuery,
			Query: &QueryResponse{Utility: &utility}}),
		mk("response-query-status", FrameResponse, &Response{Op: OpQuery,
			Query: &QueryResponse{Status: &StatusInfo{Fingerprint: "deadbeef", Name: "field-a",
				Seq: 7, Mode: "placement", Slots: 4, Rho: 3, Present: 38, Live: true}}}),
		mk("response-list", FrameResponse, &Response{Op: OpList,
			List: &ListResponse{Snapshots: []SnapshotInfo{
				{Fingerprint: "deadbeef", Name: "field-a", Seq: 7, Sensors: 2, Targets: 1},
				{Fingerprint: "cafef00d", Name: "field-a-v2", Parent: "deadbeef", Seq: 9, Sensors: 2, Targets: 1},
			}}}),
		mk("response-control", FrameResponse, &Response{Op: OpControl,
			Control: &ControlResponse{Suspended: true}}),
		// PR 10 additions: the watch protocol, pushed events, and the
		// objective surfaced in query/list job state. They extend the
		// corpus strictly — every frame above is byte-identical to the
		// pre-watch corpus.
		mk("request-watch-subscribe", FrameRequest, &Request{Op: OpWatch, Tenant: "acme",
			Watch: &WatchRequest{Fingerprint: "deadbeef", Op: WatchSubscribe}}),
		mk("request-watch-unsubscribe", FrameRequest, &Request{Op: OpWatch, Tenant: "acme",
			Watch: &WatchRequest{Fingerprint: "deadbeef", Op: WatchUnsubscribe}}),
		mk("response-watch-subscribed", FrameResponse, &Response{Op: OpWatch,
			Watch: &WatchResponse{Subscribed: true, Watchers: 2, Events: 5}}),
		mk("response-watch-unsubscribed", FrameResponse, &Response{Op: OpWatch,
			Watch: &WatchResponse{Subscribed: false, Watchers: 1, Events: 7}}),
		mk("push-plan", FramePush, &WatchEvent{Fingerprint: "deadbeef", Seq: 6, Kind: WatchEventPlan,
			Plan: &PlanResponse{Engine: EngineIncremental, Schedule: placement, Utility: utility,
				Mode: "placement", Slots: 4}}),
		mk("push-replan", FramePush, &WatchEvent{Fingerprint: "deadbeef", Seq: 7, Kind: WatchEventReplan,
			Replan: &ReplanResponse{Changed: 3, Dirty: 11, Rounds: 2, Moves: 4,
				UtilityBefore: 7.25, Utility: 6.5, Schedule: placement}}),
		mk("response-query-status-objective", FrameResponse, &Response{Op: OpQuery,
			Query: &QueryResponse{Status: &StatusInfo{Fingerprint: "deadbeef", Name: "field-a",
				Seq: 7, Mode: "placement", Slots: 4, Rho: 3, Present: 38, Live: true,
				Objective: ObjectiveUtility, Watchers: 2}}}),
		mk("response-list-objective", FrameResponse, &Response{Op: OpList,
			List: &ListResponse{Snapshots: []SnapshotInfo{
				{Fingerprint: "deadbeef", Name: "field-a", Seq: 7, Sensors: 2, Targets: 1, Objective: ObjectiveUtility},
				{Fingerprint: "cafef00d", Name: "life-b", Seq: 9, Sensors: 2, Targets: 1, Objective: ObjectiveLifetime},
			}}}),
	}
	for _, code := range []ErrorCode{CodeBadVersion, CodeBadFrame, CodeBadRequest,
		CodeNotFound, CodeRejected, CodeConflict, CodeSuspended, CodeInternal, CodeStorage} {
		out = append(out, mk("error-"+string(code), FrameError,
			&WireError{Code: code, Message: "golden " + string(code)}))
	}
	return out
}

// TestGoldenWire pins every frame encoding byte-for-byte against the
// committed corpus, and proves each pinned frame decodes and
// re-encodes to the identical bytes. With -update it rewrites the
// corpus and the FuzzWireDecode seed corpus.
func TestGoldenWire(t *testing.T) {
	frames := goldenFrames(t)
	if *updateGolden {
		entries := make([]goldenEntry, len(frames))
		for i, f := range frames {
			entries[i] = goldenEntry{Name: f.name, FrameHex: hex.EncodeToString(AppendFrame(nil, f.frame))}
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenWirePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenWirePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		writeFuzzSeeds(t)
		t.Logf("rewrote %s (%d frames) and the FuzzWireDecode seed corpus", goldenWirePath, len(entries))
	}

	data, err := os.ReadFile(goldenWirePath)
	if err != nil {
		t.Fatalf("reading golden wire corpus (run with -update to create): %v", err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(frames) {
		t.Fatalf("corpus has %d frames, test builds %d — regenerate with -update", len(entries), len(frames))
	}
	for i, f := range frames {
		want, err := hex.DecodeString(entries[i].FrameHex)
		if err != nil {
			t.Fatalf("%s: bad hex in corpus: %v", entries[i].Name, err)
		}
		if entries[i].Name != f.name {
			t.Fatalf("corpus entry %d is %q, test builds %q — regenerate with -update", i, entries[i].Name, f.name)
		}
		got := AppendFrame(nil, f.frame)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: encoding drifted from golden corpus\n got %x\nwant %x", f.name, got, want)
			continue
		}
		// Round trip: the pinned bytes must decode and re-encode to
		// themselves.
		decoded, err := ReadFrame(bytes.NewReader(want))
		if err != nil {
			t.Errorf("%s: pinned frame does not decode: %v", f.name, err)
			continue
		}
		if re := AppendFrame(nil, decoded); !bytes.Equal(re, want) {
			t.Errorf("%s: decode/re-encode not identity\n got %x\nwant %x", f.name, re, want)
		}
	}
}

// writeFuzzSeeds materializes fuzzSeeds() as the committed Go fuzz
// corpus so `go test -fuzz FuzzWireDecode` and CI always start from
// the same ≥10-seed baseline.
func writeFuzzSeeds(t *testing.T) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzWireDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range fuzzSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		name := filepath.Join(dir, fmt.Sprintf("seed_%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
