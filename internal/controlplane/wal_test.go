package controlplane

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// recordedSession is the canonical durable admission session the WAL
// harnesses share: three tenants' submits (including a child snapshot
// and two idempotency/rejection non-events that must leave no WAL
// residue) plus a limits change. Built purely from deterministic
// specs, so the encoded log is byte-stable across runs — it seeds
// FuzzWALReplay and drives the crash sweep.
type recordedEvent struct {
	// record is the WAL record the event durably appends.
	record WALRecord
	// submit is set for RecordSubmit events (replay verification).
	submit *SubmitRecord
}

// sessionSubmit normalizes and fingerprints a spec exactly as
// admission would and wraps it as the nth durable record.
func sessionSubmit(tb testing.TB, lsn uint64, tenant, name, parent string, spec DeploymentSpec) recordedEvent {
	tb.Helper()
	norm, err := Normalize(spec)
	if err != nil {
		tb.Fatalf("session spec: %v", err)
	}
	fp, err := Fingerprint(norm)
	if err != nil {
		tb.Fatal(err)
	}
	sub := SubmitRecord{Tenant: tenant, Name: name, Parent: parent, Fingerprint: fp, Seq: lsn, Spec: norm}
	payload, err := json.Marshal(&sub)
	if err != nil {
		tb.Fatal(err)
	}
	return recordedEvent{
		record: WALRecord{LSN: lsn, Kind: RecordSubmit, Payload: payload},
		submit: &sub,
	}
}

// recordedSessionEvents builds the session's durable records. Seq ==
// LSN here because every record before a submit is itself a submit
// except the final limits record.
func recordedSessionEvents(tb testing.TB) []recordedEvent {
	tb.Helper()
	a := sessionSubmit(tb, 1, "acme", "field-a", "", testSpec(8, 5, 3, 1))
	b := sessionSubmit(tb, 2, "acme", "field-b", "", testSpec(6, 4, 2, 2))
	c := sessionSubmit(tb, 3, "globex", "north", "", testSpec(7, 4, 1, 3))
	child := sessionSubmit(tb, 4, "acme", "field-a-v2", a.submit.Fingerprint, testSpec(9, 5, 3, 4))
	limits, err := json.Marshal(&LimitsRecord{Limits: Limits{
		MaxSensors: 5000, MaxTargets: DefaultMaxTargets, MaxDeployments: 12,
	}})
	if err != nil {
		tb.Fatal(err)
	}
	return []recordedEvent{
		a, b, c, child,
		{record: WALRecord{LSN: 5, Kind: RecordLimits, Payload: limits}},
	}
}

// sessionWAL encodes the recorded session as one log.
func sessionWAL(tb testing.TB) []byte {
	var buf []byte
	for _, ev := range recordedSessionEvents(tb) {
		buf = appendWALRecord(buf, ev.record)
	}
	return buf
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []WALRecord{
		{LSN: 1, Kind: RecordSubmit, Payload: []byte(`{"tenant":"t"}`)},
		{LSN: 2, Kind: RecordLimits, Payload: []byte(`{"limits":{}}`)},
		{LSN: 9000, Kind: RecordSubmit, Payload: nil},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendWALRecord(buf, r)
	}
	got, clean, torn := decodeWAL(buf)
	if torn != nil {
		t.Fatalf("clean log reported torn tail: %v", torn)
	}
	if clean != int64(len(buf)) {
		t.Fatalf("clean prefix %d, want %d", clean, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.LSN != recs[i].LSN || r.Kind != recs[i].Kind || !bytes.Equal(r.Payload, recs[i].Payload) {
			t.Fatalf("record %d: got %+v, want %+v", i, r, recs[i])
		}
	}
}

// TestWALTornTailEveryOffset truncates the recorded session's log at
// every byte offset: the decoder must keep exactly the records whose
// bytes fully survive, report the damage as a typed torn tail (except
// at record boundaries, which are clean shutdown states), and never
// panic.
func TestWALTornTailEveryOffset(t *testing.T) {
	events := recordedSessionEvents(t)
	full := sessionWAL(t)

	// boundaries[k] is the byte offset just past record k.
	boundaries := map[int64]int{0: 0}
	var buf []byte
	for i, ev := range events {
		buf = appendWALRecord(buf, ev.record)
		boundaries[int64(len(buf))] = i + 1
	}

	for cut := 0; cut <= len(full); cut++ {
		recs, clean, torn := decodeWAL(full[:cut])
		wantRecs, atBoundary := 0, false
		for off, k := range boundaries {
			if off <= int64(cut) && k > wantRecs {
				wantRecs = k
			}
			if off == int64(cut) {
				atBoundary = true
			}
		}
		if len(recs) != wantRecs {
			t.Fatalf("cut %d: decoded %d records, want %d", cut, len(recs), wantRecs)
		}
		if atBoundary {
			if torn != nil {
				t.Fatalf("cut %d at record boundary: spurious torn tail %v", cut, torn)
			}
			if clean != int64(cut) {
				t.Fatalf("cut %d: clean prefix %d", cut, clean)
			}
		} else {
			if torn == nil {
				t.Fatalf("cut %d mid-record: no torn tail reported", cut)
			}
			if !errors.Is(torn, ErrTornTail) {
				t.Fatalf("cut %d: torn tail not typed: %v", cut, torn)
			}
			if torn.Offset != clean || clean >= int64(cut) {
				t.Fatalf("cut %d: torn offset %d, clean %d", cut, torn.Offset, clean)
			}
		}
	}
}

// TestWALDecodeRejectsCorruption flips structural fields of a valid
// record and wants each damage class surfaced as a typed torn tail
// ending the clean prefix.
func TestWALDecodeRejectsCorruption(t *testing.T) {
	base := appendWALRecord(nil, WALRecord{LSN: 1, Kind: RecordSubmit, Payload: []byte(`{"tenant":"t"}`)})
	corrupt := func(name string, mutate func(b []byte)) {
		b := append([]byte(nil), base...)
		mutate(b)
		recs, _, torn := decodeWAL(b)
		if len(recs) != 0 || torn == nil {
			t.Errorf("%s: corruption accepted (%d records, torn %v)", name, len(recs), torn)
		}
	}
	corrupt("bad version", func(b []byte) { b[0] = WALVersion1 + 1 })
	corrupt("zero kind", func(b []byte) { b[1] = 0 })
	corrupt("unknown kind", func(b []byte) { b[1] = byte(maxRecordKind) + 1 })
	corrupt("payload bit flip", func(b []byte) { b[len(b)-1] ^= 0x40 })
	corrupt("crc flip", func(b []byte) { b[15] ^= 0x01 })
	corrupt("lsn flip", func(b []byte) { b[13] ^= 0x02 }) // CRC covers the LSN too

	// Oversize declared length dies before allocation.
	huge := append([]byte(nil), base...)
	huge[2], huge[3], huge[4], huge[5] = 0xff, 0xff, 0xff, 0xff
	if recs, _, torn := decodeWAL(huge); len(recs) != 0 || torn == nil {
		t.Fatalf("oversize length accepted (%d records)", len(recs))
	}

	// Non-monotonic LSN ends the clean prefix at the offending record.
	var log []byte
	log = appendWALRecord(log, WALRecord{LSN: 5, Kind: RecordLimits, Payload: []byte(`{"limits":{}}`)})
	mark := len(log)
	log = appendWALRecord(log, WALRecord{LSN: 5, Kind: RecordLimits, Payload: []byte(`{"limits":{}}`)})
	recs, clean, torn := decodeWAL(log)
	if len(recs) != 1 || clean != int64(mark) || torn == nil {
		t.Fatalf("repeated LSN: %d records, clean %d, torn %v", len(recs), clean, torn)
	}
	// A zero LSN is invalid even as the first record.
	zero := appendWALRecord(nil, WALRecord{LSN: 0, Kind: RecordLimits, Payload: []byte(`{"limits":{}}`)})
	if recs, _, torn := decodeWAL(zero); len(recs) != 0 || torn == nil {
		t.Fatalf("zero LSN accepted (%d records)", len(recs))
	}
}

// TestStoreAppendRecoverCycle drives the store through its whole life:
// open empty, append the session, reopen (records recovered), append
// more, checkpoint (log compacted), reopen (checkpoint + empty log),
// append past the checkpoint, reopen (checkpoint + tail records).
func TestStoreAppendRecoverCycle(t *testing.T) {
	dir := t.TempDir()
	events := recordedSessionEvents(t)

	st, rec, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint != nil || len(rec.Records) != 0 || rec.TornTail != nil {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	for _, ev := range events {
		var aerr error
		if ev.submit != nil {
			aerr = st.AppendSubmit(*ev.submit)
		} else {
			var lim LimitsRecord
			if err := json.Unmarshal(ev.record.Payload, &lim); err != nil {
				t.Fatal(err)
			}
			aerr = st.AppendLimits(lim.Limits)
		}
		if aerr != nil {
			t.Fatalf("append: %v", aerr)
		}
	}
	if st.LSN() != uint64(len(events)) {
		t.Fatalf("LSN %d after %d appends", st.LSN(), len(events))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}

	// Reopen: everything is in the log, nothing in a checkpoint.
	st, rec, err = OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Checkpoint != nil || len(rec.Records) != len(events) || rec.TornTail != nil {
		t.Fatalf("reopen recovered %d records (checkpoint %v, torn %v)",
			len(rec.Records), rec.Checkpoint, rec.TornTail)
	}
	onDisk := sessionWAL(t)
	got, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, onDisk) {
		t.Fatalf("on-disk log differs from the deterministic session encoding\n got %d bytes\nwant %d bytes",
			len(got), len(onDisk))
	}

	// Checkpoint through a restored server: the log compacts away.
	srv := NewServer(Config{})
	if _, err := srv.UseStore(st, rec); err != nil {
		t.Fatal(err)
	}
	if err := srv.checkpointNow(st); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(walPath(dir)); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated after checkpoint: %v, %v", fi, err)
	}
	extra := sessionSubmit(t, 5, "initech", "south", "", testSpec(5, 3, 2, 9))
	extra.submit.Seq = 5 // registry counter after 4 submits + limits LSN ordering
	if err := st.AppendSubmit(*extra.submit); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the checkpoint carries the compacted state, the log the
	// tail record, and their LSNs do not overlap.
	st, rec, err = OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rec.Checkpoint == nil || rec.Checkpoint.LSN != uint64(len(events)) {
		t.Fatalf("reopen after checkpoint: %+v", rec.Checkpoint)
	}
	if len(rec.Checkpoint.Snapshots) != 4 {
		t.Fatalf("checkpoint carries %d snapshots, want 4", len(rec.Checkpoint.Snapshots))
	}
	if len(rec.Records) != 1 || rec.Records[0].LSN != uint64(len(events))+1 {
		t.Fatalf("reopen tail: %+v", rec.Records)
	}
	if st.LSN() != uint64(len(events))+1 {
		t.Fatalf("reopened LSN %d", st.LSN())
	}
}

// TestStoreTornTailTruncatedOnOpen writes a log ending mid-record and
// wants OpenStore to report the typed tail, truncate it off disk, and
// leave the file appendable from the clean prefix.
func TestStoreTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	full := sessionWAL(t)
	cut := len(full) - 7 // mid-record
	if err := os.WriteFile(walPath(dir), full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	st, rec, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornTail == nil || !errors.Is(rec.TornTail, ErrTornTail) {
		t.Fatalf("torn log opened without typed report: %+v", rec.TornTail)
	}
	if len(rec.Records) != len(recordedSessionEvents(t))-1 {
		t.Fatalf("recovered %d records", len(rec.Records))
	}
	fi, err := os.Stat(walPath(dir))
	if err != nil || fi.Size() != rec.TornTail.Offset {
		t.Fatalf("tail not truncated: size %d, clean %d", fi.Size(), rec.TornTail.Offset)
	}
	// Appends continue the clean prefix with the next LSN.
	extra := sessionSubmit(t, st.LSN()+1, "initech", "west", "", testSpec(5, 3, 2, 10))
	if err := st.AppendSubmit(*extra.submit); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TornTail != nil || len(rec2.Records) != len(recordedSessionEvents(t)) {
		t.Fatalf("post-repair reopen: %d records, torn %v", len(rec2.Records), rec2.TornTail)
	}
}

// TestStoreCheckpointCrashIdempotent simulates a crash between the
// checkpoint rename and the log truncation: the log still holds
// records the checkpoint already compacted, and recovery must skip
// them by LSN instead of double-applying.
func TestStoreCheckpointCrashIdempotent(t *testing.T) {
	dir := t.TempDir()
	events := recordedSessionEvents(t)
	full := sessionWAL(t)

	// Build the checkpoint a server would have written after the whole
	// session, but leave the full log in place (the "crash").
	srv := NewServer(Config{})
	recs, _, torn := decodeWAL(full)
	if torn != nil {
		t.Fatal(torn)
	}
	if _, err := srv.Restore(&Recovered{Records: recs}); err != nil {
		t.Fatal(err)
	}
	snaps, seq := srv.reg.Export()
	cp := &Checkpoint{FormatVersion: checkpointFormatVersion, LSN: uint64(len(events)),
		Seq: seq, Limits: srv.adm.Limits(), Snapshots: snaps}
	data, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(checkpointPath(dir), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath(dir), full, 0o644); err != nil {
		t.Fatal(err)
	}
	// A leftover checkpoint temp file from the same crash must be swept.
	if err := os.WriteFile(checkpointPath(dir)+".tmp", []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, rec, err := OpenStore(dir, StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if len(rec.Records) != 0 {
		t.Fatalf("compacted records replayed again: %d", len(rec.Records))
	}
	if _, err := os.Stat(checkpointPath(dir) + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("crash temp file survived open: %v", err)
	}
	srv2 := NewServer(Config{})
	if _, err := srv2.Restore(rec); err != nil {
		t.Fatal(err)
	}
	mustEqualServerState(t, "checkpoint-crash recovery", srv2, srv)
}

// mustEqualServerState asserts two servers hold bit-identical control
// state: same snapshots (fingerprint, seq, lineage, spec) in the same
// global order, same admission counter, same effective limits, and the
// same per-tenant List output.
func mustEqualServerState(t *testing.T, label string, got, want *Server) {
	t.Helper()
	gs, gseq := got.reg.Export()
	ws, wseq := want.reg.Export()
	gb, err := json.Marshal(gs)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(ws)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, wb) {
		t.Fatalf("%s: exported state differs\n got %s\nwant %s", label, gb, wb)
	}
	if gseq != wseq {
		t.Fatalf("%s: admission counter %d, want %d", label, gseq, wseq)
	}
	if gl, wl := got.adm.Limits(), want.adm.Limits(); gl != wl {
		t.Fatalf("%s: limits %+v, want %+v", label, gl, wl)
	}
	tenants := make(map[string]struct{})
	for i := range ws {
		tenants[ws[i].Tenant] = struct{}{}
	}
	for tenant := range tenants {
		gl, wl := got.reg.List(tenant), want.reg.List(tenant)
		glb, _ := json.Marshal(gl)
		wlb, _ := json.Marshal(wl)
		if !bytes.Equal(glb, wlb) {
			t.Fatalf("%s: tenant %s list differs\n got %s\nwant %s", label, tenant, glb, wlb)
		}
	}
}

// TestRestoreRejectsTamperedRecord flips a payload byte *and* fixes
// the CRC, so the framing is clean but the content lies: replay must
// detect the fingerprint mismatch and fail stop rather than install a
// snapshot whose spec does not hash to its recorded identity.
func TestRestoreRejectsTamperedRecord(t *testing.T) {
	ev := sessionSubmit(t, 1, "acme", "field-a", "", testSpec(8, 5, 3, 1))
	tampered := *ev.submit
	tampered.Spec.Sensors = append([]SensorSpec(nil), tampered.Spec.Sensors...)
	tampered.Spec.Sensors[0].X += 1 // content no longer matches the fingerprint
	payload, err := json.Marshal(&tampered)
	if err != nil {
		t.Fatal(err)
	}
	log := appendWALRecord(nil, WALRecord{LSN: 1, Kind: RecordSubmit, Payload: payload})
	recs, _, torn := decodeWAL(log)
	if torn != nil || len(recs) != 1 {
		t.Fatalf("framing should be clean: %v", torn)
	}
	srv := NewServer(Config{})
	if _, err := srv.Restore(&Recovered{Records: recs}); err == nil {
		t.Fatal("tampered snapshot replayed without error")
	}
	if snaps, _ := srv.reg.Export(); len(snaps) != 0 {
		t.Fatalf("tampered snapshot left residue: %d snapshots", len(snaps))
	}
}

const goldenWALPath = "testdata/golden_wal.json"

// TestGoldenWAL pins the WAL record encodings byte-for-byte: the
// recorded session's log plus each record kind individually. The
// corpus regenerates with the same -update flag as the wire corpus,
// which also rewrites the FuzzWALReplay seed corpus.
func TestGoldenWAL(t *testing.T) {
	entries := []goldenEntry{{Name: "session", FrameHex: hex.EncodeToString(sessionWAL(t))}}
	for i, ev := range recordedSessionEvents(t) {
		kind := "submit"
		if ev.record.Kind == RecordLimits {
			kind = "limits"
		}
		entries = append(entries, goldenEntry{
			Name:     fmt.Sprintf("record-%02d-%s", i, kind),
			FrameHex: hex.EncodeToString(appendWALRecord(nil, ev.record)),
		})
	}

	if *updateGolden {
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenWALPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		writeWALFuzzSeeds(t)
		t.Logf("rewrote %s (%d entries) and the FuzzWALReplay seed corpus", goldenWALPath, len(entries))
	}

	data, err := os.ReadFile(goldenWALPath)
	if err != nil {
		t.Fatalf("reading golden WAL corpus (run with -update to create): %v", err)
	}
	var pinned []goldenEntry
	if err := json.Unmarshal(data, &pinned); err != nil {
		t.Fatal(err)
	}
	if len(pinned) != len(entries) {
		t.Fatalf("corpus has %d entries, test builds %d — regenerate with -update", len(pinned), len(entries))
	}
	for i, e := range entries {
		if pinned[i].Name != e.Name {
			t.Fatalf("corpus entry %d is %q, test builds %q", i, pinned[i].Name, e.Name)
		}
		if pinned[i].FrameHex != e.FrameHex {
			t.Errorf("%s: encoding drifted from golden corpus", e.Name)
			continue
		}
		// Round trip: pinned bytes decode and re-encode to themselves.
		raw, err := hex.DecodeString(pinned[i].FrameHex)
		if err != nil {
			t.Fatal(err)
		}
		recs, clean, torn := decodeWAL(raw)
		if torn != nil || clean != int64(len(raw)) {
			t.Errorf("%s: pinned bytes do not decode cleanly: %v", e.Name, torn)
			continue
		}
		var re []byte
		for _, r := range recs {
			re = appendWALRecord(re, r)
		}
		if !bytes.Equal(re, raw) {
			t.Errorf("%s: decode/re-encode not identity", e.Name)
		}
	}
}

// walFuzzSeeds is the committed FuzzWALReplay seed corpus: the
// recorded session, every single-record encoding, clean boundaries,
// torn tails, and corruption shapes — shared between f.Add and the
// -update regeneration so the on-disk corpus cannot drift.
func walFuzzSeeds(tb testing.TB) [][]byte {
	full := sessionWAL(tb)
	events := recordedSessionEvents(tb)
	firstLen := len(appendWALRecord(nil, events[0].record))
	crcFlip := append([]byte(nil), full...)
	crcFlip[15] ^= 0x01
	badKind := append([]byte(nil), full...)
	badKind[1] = 0x7f
	seeds := [][]byte{
		full,
		full[:firstLen],              // clean single-record boundary
		full[:firstLen+walHeaderLen], // torn: header of record 2, no payload
		full[:len(full)-3],           // torn tail
		crcFlip,
		badKind,
		{},
		[]byte("not a log at all"),
		appendWALRecord(nil, WALRecord{LSN: 1, Kind: RecordLimits, Payload: []byte(`{"limits":{"max_sensors":5}}`)}),
		appendWALRecord(nil, WALRecord{LSN: 1, Kind: RecordSubmit, Payload: []byte(`{"tenant":"t","fingerprint":"lies","seq":1,"spec":{"rho":1}}`)}),
	}
	for _, ev := range events {
		seeds = append(seeds, appendWALRecord(nil, ev.record))
	}
	return seeds
}

// writeWALFuzzSeeds materializes walFuzzSeeds as the committed Go fuzz
// corpus (same format and -update path as FuzzWireDecode's).
func writeWALFuzzSeeds(t *testing.T) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range walFuzzSeeds(t) {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		name := filepath.Join(dir, fmt.Sprintf("seed_%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzWALReplay hammers the recovery path with mutated logs. The
// contract: decoding never panics, the accepted clean prefix
// re-encodes byte-identically, and any log that replays successfully
// yields a state that re-serializes byte-identically when exported and
// restored again (replay is a fixed point — no lossy acceptance).
func FuzzWALReplay(f *testing.F) {
	for _, seed := range walFuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, clean, torn := decodeWAL(data)
		if clean > int64(len(data)) {
			t.Fatalf("clean prefix %d beyond input %d", clean, len(data))
		}
		if (torn != nil) != (clean < int64(len(data))) {
			t.Fatalf("torn report %v inconsistent with clean %d of %d", torn, clean, len(data))
		}
		var re []byte
		for _, r := range recs {
			re = appendWALRecord(re, r)
		}
		if !bytes.Equal(re, data[:clean]) {
			t.Fatalf("accepted prefix does not re-encode identically")
		}

		srv := NewServer(Config{})
		if _, err := srv.Restore(&Recovered{Records: recs, TornTail: torn}); err != nil {
			return // typed rejection of a semantically bad log
		}
		snaps, seq := srv.reg.Export()
		first, err := json.Marshal(snaps)
		if err != nil {
			t.Fatal(err)
		}
		// Fixed point: exporting the accepted state and restoring it as a
		// checkpoint must reproduce the identical serialization.
		srv2 := NewServer(Config{})
		if _, err := srv2.Restore(&Recovered{Checkpoint: &Checkpoint{
			FormatVersion: checkpointFormatVersion, LSN: seq, Seq: seq,
			Limits: srv.adm.Limits(), Snapshots: snaps,
		}}); err != nil {
			t.Fatalf("accepted state does not restore from its own export: %v", err)
		}
		snaps2, seq2 := srv2.reg.Export()
		second, err := json.Marshal(snaps2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) || seq != seq2 {
			t.Fatalf("replayed state is not a serialization fixed point\n first %s\nsecond %s", first, second)
		}
		if srv.adm.Limits() != srv2.adm.Limits() {
			t.Fatalf("limits not a fixed point: %+v vs %+v", srv.adm.Limits(), srv2.adm.Limits())
		}
	})
}
