package controlplane

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// decodeStrictJSON unmarshals exactly one JSON value, rejecting
// unknown fields and trailing garbage — a WAL payload is ours or it is
// corruption, so the lenient wire-decoder posture is wrong here.
func decodeStrictJSON(payload []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding payload: %w", err)
	}
	if dec.More() {
		return errors.New("decoding payload: trailing data")
	}
	return nil
}

// Crash recovery: replaying a Recovered (checkpoint + clean-prefix WAL
// records) into a fresh Server so a restarted daemon reaches a state
// bit-identical — same fingerprints, same Seq, same list order, same
// effective limits — to the daemon that never crashed.
//
// Replay trusts nothing it reads: every submit record's spec is pushed
// back through the same normalizer the live admission path used and
// its fingerprint re-derived; a mismatch is a hard error (fail stop,
// never a silently wrong registry). Lineage is NOT re-validated — it
// was validated at admission, and concurrent submits may durably land
// out of parent order — but the recorded Seq is installed verbatim, so
// audit order survives the round trip exactly.

// Export returns every admitted snapshot across all tenants in global
// admission (Seq) order, plus the registry's sequence counter — the
// checkpoint body, and the canonical serialization FuzzWALReplay pins.
func (r *Registry) Export() ([]SubmitRecord, uint64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []SubmitRecord
	for tenant, byFP := range r.tenants {
		for _, snap := range byFP {
			out = append(out, SubmitRecord{
				Tenant:      tenant,
				Name:        snap.Name,
				Parent:      snap.Parent,
				Fingerprint: snap.Fingerprint,
				Seq:         snap.Seq,
				Spec:        snap.Spec,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, r.seq
}

// installRecovered installs a replayed snapshot with its recorded Seq.
// Idempotent on (fingerprint, seq): a record compacted into the
// checkpoint AND still in the log (a crash between checkpoint rename
// and WAL truncation) replays as a silent skip; the same fingerprint
// at a different seq is corruption and errors.
func (r *Registry) installRecovered(snap *Snapshot) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	byFP := r.tenants[snap.Tenant]
	if byFP == nil {
		byFP = make(map[string]*Snapshot)
		r.tenants[snap.Tenant] = byFP
	}
	if existing, ok := byFP[snap.Fingerprint]; ok {
		if existing.Seq != snap.Seq {
			return fmt.Errorf("controlplane: replayed snapshot %s has seq %d, registry holds %d",
				snap.Fingerprint, snap.Seq, existing.Seq)
		}
		return nil
	}
	if snap.Seq == 0 {
		return fmt.Errorf("controlplane: replayed snapshot %s has zero seq", snap.Fingerprint)
	}
	byFP[snap.Fingerprint] = snap
	if snap.Seq > r.seq {
		r.seq = snap.Seq
	}
	return nil
}

// seqFloor raises the registry's admission counter to at least seq
// (the checkpoint's counter can exceed its max snapshot Seq when the
// later snapshots' tenants were since untouched — replay must not
// reissue those numbers).
func (r *Registry) seqFloor(seq uint64) {
	r.mu.Lock()
	if seq > r.seq {
		r.seq = seq
	}
	r.mu.Unlock()
}

// RecoverStats summarizes a replay for logs.
type RecoverStats struct {
	// Snapshots and Tenants count what the replay installed.
	Snapshots int
	Tenants   int
	// Checkpointed counts snapshots that came from the checkpoint (the
	// rest replayed from WAL records).
	Checkpointed int
	// Records counts WAL records applied past the checkpoint.
	Records int
	// TornTail is the store's torn-tail report, echoed for the caller's
	// log line (nil after a clean shutdown).
	TornTail *TornTailError
}

// replaySubmit verifies one durable admission event and installs it:
// the spec re-normalizes and re-fingerprints to exactly the recorded
// identity, or the replay fails stop.
func (s *Server) replaySubmit(rec *SubmitRecord) error {
	if rec.Tenant == "" {
		return errors.New("controlplane: replayed snapshot missing tenant")
	}
	spec, err := Normalize(rec.Spec)
	if err != nil {
		return fmt.Errorf("controlplane: replayed snapshot %s no longer normalizes: %w", rec.Fingerprint, err)
	}
	fp, err := Fingerprint(spec)
	if err != nil {
		return err
	}
	if fp != rec.Fingerprint {
		return fmt.Errorf("controlplane: replayed snapshot fingerprint mismatch: recorded %s, recomputed %s",
			rec.Fingerprint, fp)
	}
	return s.reg.installRecovered(&Snapshot{
		Tenant:      rec.Tenant,
		Name:        rec.Name,
		Fingerprint: rec.Fingerprint,
		Parent:      rec.Parent,
		Seq:         rec.Seq,
		Spec:        spec,
	})
}

// Restore replays recovered durable state into this server. The server
// must be fresh (nothing admitted); planners are NOT rebuilt here —
// the serving layer rebuilds them lazily per deployment, exactly as it
// does after losing an install race, so recovery cost is O(state), not
// O(state × planner construction).
func (s *Server) Restore(rec *Recovered) (*RecoverStats, error) {
	if rec == nil {
		return &RecoverStats{}, nil
	}
	if _, seq := s.reg.Export(); seq != 0 {
		return nil, errors.New("controlplane: Restore requires a fresh server")
	}
	stats := &RecoverStats{TornTail: rec.TornTail}

	if cp := rec.Checkpoint; cp != nil {
		s.adm.SetLimits(cp.Limits)
		for i := range cp.Snapshots {
			if err := s.replaySubmit(&cp.Snapshots[i]); err != nil {
				return nil, fmt.Errorf("controlplane: checkpoint snapshot %d: %w", i, err)
			}
		}
		s.reg.seqFloor(cp.Seq)
		stats.Checkpointed = len(cp.Snapshots)
	}

	for _, r := range rec.Records {
		switch r.Kind {
		case RecordSubmit:
			var sub SubmitRecord
			if err := decodeStrictJSON(r.Payload, &sub); err != nil {
				return nil, fmt.Errorf("controlplane: WAL record lsn=%d: %w", r.LSN, err)
			}
			if err := s.replaySubmit(&sub); err != nil {
				return nil, fmt.Errorf("controlplane: WAL record lsn=%d: %w", r.LSN, err)
			}
		case RecordLimits:
			var lim LimitsRecord
			if err := decodeStrictJSON(r.Payload, &lim); err != nil {
				return nil, fmt.Errorf("controlplane: WAL record lsn=%d: %w", r.LSN, err)
			}
			// The record holds the post-change effective limits (all
			// fields non-zero), so SetLimits restores them exactly.
			s.adm.SetLimits(lim.Limits)
		default:
			return nil, fmt.Errorf("controlplane: WAL record lsn=%d: unknown kind %d", r.LSN, r.Kind)
		}
		stats.Records++
	}

	snaps, _ := s.reg.Export()
	tenants := make(map[string]struct{})
	for i := range snaps {
		tenants[snaps[i].Tenant] = struct{}{}
	}
	stats.Snapshots = len(snaps)
	stats.Tenants = len(tenants)
	return stats, nil
}

// UseStore replays the store's recovered state into the server and
// attaches the store, so subsequent admission events are durably
// logged and Close writes a final checkpoint (the clean-shutdown
// flush). Call before Serve.
func (s *Server) UseStore(st *Store, rec *Recovered) (*RecoverStats, error) {
	stats, err := s.Restore(rec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.store = st
	s.mu.Unlock()
	return stats, nil
}

// checkpointNow compacts the current full state into the store's
// checkpoint. Used on the periodic cadence and as the clean-shutdown
// flush.
func (s *Server) checkpointNow(st *Store) error {
	snaps, seq := s.reg.Export()
	return st.WriteCheckpoint(&Checkpoint{
		Seq:       seq,
		Limits:    s.adm.Limits(),
		Snapshots: snaps,
	})
}
