package controlplane

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Version: Version1, Type: FrameHello, Payload: []byte(`{"max_version":1}`)},
		{Version: Version1, Type: FrameRequest, Payload: []byte(`{"op":"list","tenant":"t"}`)},
		{Version: Version1, Type: FrameError, Payload: nil},
	}
	for _, f := range cases {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if got.Version != f.Version || got.Type != f.Type || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mismatch: wrote %+v read %+v", f, got)
		}
	}
}

func TestReadFrameCleanEOF(t *testing.T) {
	if _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty input: want io.EOF, got %v", err)
	}
}

func TestReadFrameTruncatedHeader(t *testing.T) {
	for n := 1; n < headerLen; n++ {
		data := make([]byte, n)
		data[0] = Version1
		_, err := ReadFrame(bytes.NewReader(data))
		if !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("%d header bytes: want ErrTruncatedFrame, got %v", n, err)
		}
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	data := AppendFrame(nil, Frame{Version: Version1, Type: FrameRequest, Payload: []byte(`{"op":"list"}`)})
	for cut := headerLen; cut < len(data); cut++ {
		_, err := ReadFrame(bytes.NewReader(data[:cut]))
		if !errors.Is(err, ErrTruncatedFrame) {
			t.Fatalf("cut at %d: want ErrTruncatedFrame, got %v", cut, err)
		}
	}
}

func TestReadFrameBadVersion(t *testing.T) {
	for _, v := range []byte{0, MaxVersion + 1, 0x7f, 0xff} {
		data := AppendFrame(nil, Frame{Version: Version1, Type: FrameHello})
		data[0] = v
		_, err := ReadFrame(bytes.NewReader(data))
		if !errors.Is(err, ErrBadVersion) {
			t.Fatalf("version %d: want ErrBadVersion, got %v", v, err)
		}
	}
}

func TestReadFrameBadType(t *testing.T) {
	for _, ft := range []byte{0, byte(maxFrameType) + 1, 0xff} {
		data := AppendFrame(nil, Frame{Version: Version1, Type: FrameHello})
		data[1] = ft
		_, err := ReadFrame(bytes.NewReader(data))
		if !errors.Is(err, ErrBadFrameType) {
			t.Fatalf("type %d: want ErrBadFrameType, got %v", ft, err)
		}
	}
}

// TestReadFrameOversize feeds hostile length fields — including the
// 4 GiB maximum — and wants a typed error before any payload
// allocation (the MaxPeriod decoder-panic discipline: attacker bytes
// never size an allocation).
func TestReadFrameOversize(t *testing.T) {
	for _, n := range []uint32{MaxFrameBytes + 1, 1 << 30, 0xffffffff} {
		hdr := []byte{Version1, byte(FrameRequest), 0, 0, 0, 0}
		binary.BigEndian.PutUint32(hdr[2:], n)
		_, err := ReadFrame(bytes.NewReader(hdr))
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("length %d: want ErrFrameTooLarge, got %v", n, err)
		}
	}
	var huge bytes.Buffer
	err := WriteFrame(&huge, Frame{Version: Version1, Type: FrameRequest, Payload: make([]byte, MaxFrameBytes+1)})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("write side: want ErrFrameTooLarge, got %v", err)
	}
}

func TestNegotiateVersion(t *testing.T) {
	if _, err := NegotiateVersion(MinVersion - 1); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("below min: want ErrBadVersion, got %v", err)
	}
	if v, err := NegotiateVersion(MaxVersion); err != nil || v != MaxVersion {
		t.Fatalf("exact: got (%d, %v)", v, err)
	}
	if v, err := NegotiateVersion(MaxVersion + 7); err != nil || v != MaxVersion {
		t.Fatalf("future client: want downgrade to %d, got (%d, %v)", MaxVersion, v, err)
	}
}

func TestDecodeRequestValidation(t *testing.T) {
	cases := []struct {
		name, payload string
	}{
		{"not json", `{{{`},
		{"missing tenant", `{"op":"list","list":{}}`},
		{"unknown op", `{"op":"dance","tenant":"t"}`},
		{"missing body", `{"op":"plan","tenant":"t"}`},
		{"wrong body", `{"op":"plan","tenant":"t","list":{}}`},
		{"two bodies", `{"op":"plan","tenant":"t","plan":{"fingerprint":"x"},"list":{}}`},
	}
	for _, c := range cases {
		if _, err := DecodeRequest([]byte(c.payload)); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
	req, err := DecodeRequest([]byte(`{"op":"list","tenant":"t","list":{}}`))
	if err != nil || req.Op != OpList || req.Tenant != "t" {
		t.Fatalf("valid request rejected: %v", err)
	}
}

func TestDecodeWireErrorNeverNil(t *testing.T) {
	for _, payload := range [][]byte{nil, []byte(`garbage`), []byte(`{}`), []byte(`{"code":"rejected","message":"m"}`)} {
		we := DecodeWireError(payload)
		if we == nil || we.Code == "" {
			t.Fatalf("payload %q: want non-nil typed error, got %+v", payload, we)
		}
	}
}

// FuzzWireDecode hammers the frame and request decoders with hostile
// bytes: they must never panic, never allocate beyond MaxFrameBytes,
// and every accepted frame must re-encode byte-identically to the
// consumed prefix. Seeds live in testdata/fuzz/FuzzWireDecode
// (regenerate with `go test -run TestGoldenWire -update`).
func FuzzWireDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly — exactly what hostile input gets
		}
		if len(fr.Payload) > MaxFrameBytes {
			t.Fatalf("accepted frame with %d-byte payload beyond MaxFrameBytes", len(fr.Payload))
		}
		consumed := headerLen + len(fr.Payload)
		if re := AppendFrame(nil, fr); !bytes.Equal(re, data[:consumed]) {
			t.Fatalf("re-encode mismatch: consumed %x, re-encoded %x", data[:consumed], re)
		}
		// Payload decoders must be panic-free on arbitrary accepted
		// frames; errors are fine.
		switch fr.Type {
		case FrameHello:
			DecodeHello(fr.Payload)
		case FrameHelloAck:
			DecodeHelloAck(fr.Payload)
		case FrameRequest:
			DecodeRequest(fr.Payload)
		case FrameResponse:
			DecodeResponse(fr.Payload)
		case FrameError:
			DecodeWireError(fr.Payload)
		case FramePush:
			DecodeWatchEvent(fr.Payload)
		}
	})
}

// fuzzSeeds is the committed seed corpus, shared between f.Add and the
// -update regeneration of testdata/fuzz/FuzzWireDecode so the
// on-disk corpus can never drift from the in-code one.
func fuzzSeeds() [][]byte {
	valid := func(t FrameType, payload string) []byte {
		return AppendFrame(nil, Frame{Version: Version1, Type: t, Payload: []byte(payload)})
	}
	oversize := []byte{Version1, byte(FrameRequest), 0xff, 0xff, 0xff, 0xff}
	badVersion := valid(FrameHello, `{"max_version":1}`)
	badVersion = append([]byte{}, badVersion...)
	badVersion[0] = 0x7f
	badType := []byte{Version1, 0x09, 0, 0, 0, 0}
	truncated := valid(FrameRequest, `{"op":"list","tenant":"t","list":{}}`)
	return [][]byte{
		valid(FrameHello, `{"max_version":1,"client":"fuzz"}`),
		valid(FrameRequest, `{"op":"list","tenant":"t","list":{}}`),
		valid(FrameRequest, `{"op":"submit","tenant":"t","submit":{"spec":{"rho":3,"sensors":[{"x":1,"y":2,"range":3}],"targets":[{"x":1,"y":1}]}}}`),
		valid(FrameResponse, `{"op":"plan","plan":{"engine":"incremental","schedule":{"mode":"placement","period":4,"assign":[0,1]},"utility":2,"mode":"placement","slots":4}}`),
		valid(FrameRequest, `{"op":"plan","tenant":"t","plan":{"fingerprint":"deadbeef","engine":"hef","objective":"lifetime"}}`),
		valid(FrameError, `{"code":"rejected","message":"nope"}`),
		valid(FrameRequest, `not json at all`),
		valid(FrameHelloAck, ``),
		valid(FrameRequest, `{"op":"watch","tenant":"t","watch":{"fingerprint":"deadbeef","watch_op":"subscribe"}}`),
		valid(FramePush, `{"fingerprint":"deadbeef","seq":3,"kind":"replan","replan":{"changed":1,"dirty":2,"utility_before":2,"utility":1.5,"schedule":{"mode":"placement","period":4,"assign":[0,1]}}}`),
		valid(FramePush, `not a watch event`),
		{},                              // empty input
		{Version1, byte(FrameHello), 0}, // truncated header
		badVersion,
		badType,
		oversize,
		truncated[:len(truncated)-5], // truncated payload
	}
}
