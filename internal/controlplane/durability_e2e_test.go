package controlplane

import (
	"testing"
)

// TestE2ERestartDifferential is the acceptance differential for the
// durability layer: a daemon is stopped (cleanly, by crash, or by
// crash after a mid-session compaction) and restarted from its data
// directory; the restarted daemon must hold bit-identical control
// state — same fingerprints, Seq, list order, effective limits — and
// then serve the full plan/replan differential session exactly as a
// daemon that never stopped would (differentialSession proves every
// response bit-identical to direct engine calls, which is the same
// yardstick the never-crashed daemon is held to).
func TestE2ERestartDifferential(t *testing.T) {
	spec := testSpec(40, 25, 3, 42)
	aux := testSpec(6, 4, 2, 7)

	variants := []struct {
		name  string
		every int  // checkpoint cadence during the recorded run
		clean bool // stop via Close (final checkpoint) vs. abandon (crash)
	}{
		{"clean-shutdown", 1 << 30, true},
		{"crash-wal-only", 1 << 30, false},
		{"crash-checkpoint-plus-tail", 2, false},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			dir := t.TempDir()
			st, rec, err := OpenStore(dir, StoreOptions{CheckpointEvery: v.every})
			if err != nil {
				t.Fatal(err)
			}
			srv1 := NewServer(Config{})
			if _, err := srv1.UseStore(st, rec); err != nil {
				t.Fatal(err)
			}
			cli1 := newClient(t, srv1)
			if _, err := cli1.Submit("acme", SubmitRequest{Name: "diff", Spec: spec}); err != nil {
				t.Fatal(err)
			}
			if _, err := cli1.Submit("acme", SubmitRequest{Name: "aux", Spec: aux}); err != nil {
				t.Fatal(err)
			}
			if _, err := cli1.Control("acme", ControlRequest{Op: ControlLimits,
				Limits: &Limits{MaxDeployments: 11}}); err != nil {
				t.Fatal(err)
			}
			// The restarted daemon also recomputes plans; give the original a
			// live session so the restart provably does NOT depend on it.
			if _, err := cli1.Plan("acme", PlanRequest{Fingerprint: mustFingerprint(t, spec)}); err != nil {
				t.Fatal(err)
			}
			want := stateDigest(t, srv1)
			if v.clean {
				if err := srv1.Close(); err != nil {
					t.Fatal(err)
				}
			}
			// Crash variants simply abandon srv1: the store's appends are
			// already synced; nothing else may run against it.

			st2, rec2, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			switch v.name {
			case "clean-shutdown":
				if rec2.Checkpoint == nil || len(rec2.Records) != 0 {
					t.Fatalf("clean shutdown must leave checkpoint-only state: cp=%v tail=%d",
						rec2.Checkpoint != nil, len(rec2.Records))
				}
			case "crash-wal-only":
				if rec2.Checkpoint != nil || len(rec2.Records) != 3 {
					t.Fatalf("crash must leave WAL-only state: cp=%v tail=%d",
						rec2.Checkpoint != nil, len(rec2.Records))
				}
			case "crash-checkpoint-plus-tail":
				if rec2.Checkpoint == nil || len(rec2.Records) != 1 {
					t.Fatalf("mid-session compaction must leave checkpoint+tail: cp=%v tail=%d",
						rec2.Checkpoint != nil, len(rec2.Records))
				}
			}
			srv2 := NewServer(Config{})
			stats, err := srv2.UseStore(st2, rec2)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { srv2.Close() })
			if stats.Snapshots != 2 || stats.Tenants != 1 {
				t.Fatalf("recovered %d snapshots across %d tenants, want 2/1", stats.Snapshots, stats.Tenants)
			}
			if got := stateDigest(t, srv2); got != want {
				t.Fatalf("restarted state diverges from the daemon that never stopped:\n got %s\nwant %s", got, want)
			}

			// The restarted daemon serves the whole differential session
			// bit-identically (the Submit inside is an idempotent resubmit of
			// the recovered snapshot — which itself proves the recovered spec
			// re-fingerprints to its recorded identity).
			cli2 := newClient(t, srv2)
			if sub, err := cli2.Submit("acme", SubmitRequest{Name: "diff", Spec: spec}); err != nil || !sub.Resubmitted {
				t.Fatalf("recovered snapshot not resubmit-idempotent: %+v, %v", sub, err)
			}
			differentialSession(t, cli2, "acme", spec, fullScript())
		})
	}
}

// mustFingerprint computes the admission identity of a spec exactly as
// the daemon does.
func mustFingerprint(t *testing.T, spec DeploymentSpec) string {
	t.Helper()
	norm, err := Normalize(spec)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Fingerprint(norm)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

// TestE2EWatcherPollerDifferential proves the watch push stream
// equivalent to polling: an actor drives the full perturbation script
// while a watcher on a second connection receives pushes, and every
// pushed payload must equal the actor's response bit for bit
// (Float64bits on utilities and gaps, exact schedule assignments),
// with gap-free Seq numbering.
func TestE2EWatcherPollerDifferential(t *testing.T) {
	cli, srv := newTestPair(t, Config{})
	sub, err := cli.Submit("acme", SubmitRequest{Name: "watched", Spec: testSpec(40, 25, 3, 42)})
	if err != nil {
		t.Fatal(err)
	}

	cliW := newClient(t, srv)
	w, err := cliW.Watch("acme", sub.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if w.Events != 0 {
		t.Fatalf("fresh deployment reports %d prior events", w.Events)
	}
	// A second, transient watcher: the server counts subscriptions per
	// deployment (closed again before any push so it need not read).
	cliW2 := newClient(t, srv)
	w2, err := cliW2.Watch("acme", sub.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if qs, err := cli.Query("acme", QueryRequest{Fingerprint: sub.Fingerprint, What: QueryStatus}); err != nil ||
		qs.Status == nil || qs.Status.Watchers != 2 {
		t.Fatalf("status watchers: %+v, %v", qs.Status, err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	// The watcher must be actively reading while the actor works: pushes
	// are written synchronously on the acting request's path.
	script := fullScript()
	wantEvents := 1 + len(script) // the plan push + one per replan
	type pushed struct {
		ev  *WatchEvent
		err error
	}
	stream := make(chan pushed, wantEvents)
	go func() {
		for i := 0; i < wantEvents; i++ {
			ev, err := w.Next()
			stream <- pushed{ev, err}
			if err != nil {
				return
			}
		}
	}()

	// Actor side: poll-style responses, recorded for comparison.
	plan, err := cli.Plan("acme", PlanRequest{Fingerprint: sub.Fingerprint})
	if err != nil {
		t.Fatal(err)
	}
	replans := make([]*ReplanResponse, 0, len(script))
	for _, ev := range script {
		r, err := cli.Replan("acme", ReplanRequest{
			Fingerprint: sub.Fingerprint, Op: ev.op, IDs: ev.ids, Rho: ev.rho,
			WithGap: true, WithSchedule: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		replans = append(replans, r)
	}

	events := make([]*WatchEvent, 0, wantEvents)
	for i := 0; i < wantEvents; i++ {
		p := <-stream
		if p.err != nil {
			t.Fatalf("push %d: %v", i, p.err)
		}
		events = append(events, p.ev)
	}

	for i, ev := range events {
		if ev.Seq != uint64(i)+1 {
			t.Fatalf("push %d: Seq %d — stream not gap-free", i, ev.Seq)
		}
		if ev.Fingerprint != sub.Fingerprint {
			t.Fatalf("push %d: fingerprint %q", i, ev.Fingerprint)
		}
	}
	// Push 0 mirrors the plan response.
	ev0 := events[0]
	if ev0.Kind != WatchEventPlan || ev0.Plan == nil {
		t.Fatalf("first push is not the plan event: %+v", ev0)
	}
	if !sameBits(ev0.Plan.Utility, plan.Utility) || ev0.Plan.Engine != plan.Engine ||
		ev0.Plan.Mode != plan.Mode || ev0.Plan.Slots != plan.Slots {
		t.Fatalf("pushed plan diverges from polled plan:\npush %+v\npoll %+v", ev0.Plan, plan)
	}
	mustEqualSchedules(t, "pushed plan", ev0.Plan.Schedule, plan.Schedule)
	// Pushes 1..n mirror the replan responses.
	for i, want := range replans {
		ev := events[i+1]
		label := "pushed replan " + script[i].op
		if ev.Kind != WatchEventReplan || ev.Replan == nil {
			t.Fatalf("%s: wrong event %+v", label, ev)
		}
		got := ev.Replan
		if got.Changed != want.Changed || got.Dirty != want.Dirty ||
			got.Rounds != want.Rounds || got.Moves != want.Moves || got.Full != want.Full {
			t.Fatalf("%s: stats diverge:\npush %+v\npoll %+v", label, got, want)
		}
		if !sameBits(got.Utility, want.Utility) || !sameBits(got.UtilityBefore, want.UtilityBefore) {
			t.Fatalf("%s: utilities diverge: push (%v→%v), poll (%v→%v)",
				label, got.UtilityBefore, got.Utility, want.UtilityBefore, want.Utility)
		}
		if got.Gap == nil || want.Gap == nil || !sameBits(*got.Gap, *want.Gap) {
			t.Fatalf("%s: gaps diverge: push %v, poll %v", label, got.Gap, want.Gap)
		}
		mustEqualSchedules(t, label, got.Schedule, want.Schedule)
	}

	// Unsubscribe returns the connection to request/response use and
	// stops the pushes: a further replan must not reach cliW, which a
	// follow-up query on that very connection proves (a stray push would
	// surface as a protocol error — or a deadlock — here).
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Replan("acme", ReplanRequest{Fingerprint: sub.Fingerprint,
		Op: ReplanKill, IDs: []int{1}}); err != nil {
		t.Fatal(err)
	}
	qs, err := cliW.Query("acme", QueryRequest{Fingerprint: sub.Fingerprint, What: QueryStatus})
	if err != nil {
		t.Fatalf("connection not clean after unsubscribe: %v", err)
	}
	if qs.Status.Watchers != 0 {
		t.Fatalf("watchers after unsubscribe: %d", qs.Status.Watchers)
	}
	if qs.Status.Objective != ObjectiveUtility {
		t.Fatalf("status objective %q after utility planning", qs.Status.Objective)
	}
	// The unobserved replan still numbered its event: a new subscriber
	// sees the full count, so reconnecting watchers detect missed events.
	w3, err := cliW.Watch("acme", sub.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if w3.Events != uint64(wantEvents)+1 {
		t.Fatalf("event counter %d after %d observed + 1 unobserved events", w3.Events, wantEvents)
	}
	if err := w3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestE2EObjectiveSurfaced pins the objective field through both read
// paths: empty until a plan establishes one (pre-objective encodings
// byte-identical), then tracking the last-planned objective per
// deployment — including flipping back when a utility query
// re-establishes the incremental session on a lifetime-planned
// deployment.
func TestE2EObjectiveSurfaced(t *testing.T) {
	cli, _ := newTestPair(t, Config{})
	subU, err := cli.Submit("acme", SubmitRequest{Name: "field-u", Spec: testSpec(12, 8, 3, 21)})
	if err != nil {
		t.Fatal(err)
	}
	subL, err := cli.Submit("acme", SubmitRequest{Name: "field-l", Spec: testSpec(10, 6, 2, 22)})
	if err != nil {
		t.Fatal(err)
	}
	byFP := func(t *testing.T) map[string]string {
		t.Helper()
		list, err := cli.List("acme")
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[string]string, len(list.Snapshots))
		for _, s := range list.Snapshots {
			m[s.Fingerprint] = s.Objective
		}
		return m
	}

	if m := byFP(t); m[subU.Fingerprint] != "" || m[subL.Fingerprint] != "" {
		t.Fatalf("objective set before any plan: %v", m)
	}
	if _, err := cli.Plan("acme", PlanRequest{Fingerprint: subU.Fingerprint}); err != nil {
		t.Fatal(err)
	}
	plan, err := cli.Plan("acme", PlanRequest{Fingerprint: subL.Fingerprint, Objective: ObjectiveLifetime})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Objective != ObjectiveLifetime || plan.Lifetime == nil {
		t.Fatalf("lifetime plan response: %+v", plan)
	}
	if m := byFP(t); m[subU.Fingerprint] != ObjectiveUtility || m[subL.Fingerprint] != ObjectiveLifetime {
		t.Fatalf("objectives after planning both: %v", m)
	}
	qs, err := cli.Query("acme", QueryRequest{Fingerprint: subL.Fingerprint, What: QueryStatus})
	if err != nil || qs.Status == nil || qs.Status.Objective != ObjectiveLifetime {
		t.Fatalf("lifetime status: %+v, %v", qs.Status, err)
	}
	// A utility query establishes the incremental session, so the
	// deployment's live objective flips back to utility.
	if _, err := cli.Query("acme", QueryRequest{Fingerprint: subL.Fingerprint, What: QueryUtility}); err != nil {
		t.Fatal(err)
	}
	if m := byFP(t); m[subL.Fingerprint] != ObjectiveUtility {
		t.Fatalf("objective after utility query on lifetime deployment: %v", m)
	}
}

// TestE2EWatchValidation pins the watch error surface: unknown
// fingerprints and bad ops are typed wire errors, and unsubscribing
// without a subscription is answered (not an error) with
// Subscribed=false.
func TestE2EWatchValidation(t *testing.T) {
	cli, _ := newTestPair(t, Config{})
	sub, err := cli.Submit("acme", SubmitRequest{Name: "w", Spec: testSpec(6, 4, 2, 9)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Watch("acme", "no-such-deployment"); !isCode(err, CodeNotFound) {
		t.Fatalf("unknown fingerprint: want %s, got %v", CodeNotFound, err)
	}
	if _, err := cli.Watch("globex", sub.Fingerprint); !isCode(err, CodeNotFound) {
		t.Fatalf("cross-tenant watch: want %s, got %v", CodeNotFound, err)
	}
	resp, err := cli.roundTrip(&Request{Op: OpWatch, Tenant: "acme",
		Watch: &WatchRequest{Fingerprint: sub.Fingerprint, Op: "subscrib"}})
	if !isCode(err, CodeBadRequest) {
		t.Fatalf("bad watch op: want %s, got (%+v, %v)", CodeBadRequest, resp, err)
	}
	resp, err = cli.roundTrip(&Request{Op: OpWatch, Tenant: "acme",
		Watch: &WatchRequest{Fingerprint: sub.Fingerprint, Op: WatchUnsubscribe}})
	if err != nil || resp.Watch == nil || resp.Watch.Subscribed || resp.Watch.Watchers != 0 {
		t.Fatalf("idle unsubscribe: %+v, %v", resp, err)
	}
}
