// Package controlplane is the serving layer of the library: it owns
// deployments as immutable, fingerprinted snapshots flowing through a
// fixed composition order — registry → normalizer/validator →
// admission — and serves plan/replan/query traffic over a small
// versioned length-prefixed wire protocol. The daemon built on it
// (cmd/coold) is a transparent transport over the fuzz-locked planning
// engines: the e2e differential harness asserts that every response is
// bit-identical to the corresponding direct Planner/Incremental call.
//
// The module decomposition (registry, normalizer, admission in a fixed
// order; data plane decoupled from the control connection; start/stop/
// reconfigure without redeploy) follows the control-plane guides
// referenced in SNIPPETS.md; see DESIGN.md §5.8.
package controlplane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol versions. Every frame carries an explicit version byte so
// that incompatible peers fail with a typed error instead of a garbled
// stream; the Hello handshake negotiates the session version downward
// from the client's maximum.
const (
	// Version1 is the initial wire protocol: 6-byte frame header
	// (version, type, big-endian uint32 payload length) followed by a
	// JSON payload.
	Version1 byte = 1
	// MinVersion and MaxVersion bound the versions this build speaks.
	MinVersion byte = Version1
	MaxVersion byte = Version1
)

// FrameType tags the payload carried by one frame.
type FrameType byte

// Frame types. Error frames are first-class ("typed errors"): a peer
// that cannot satisfy a request answers FrameError with a machine-
// readable code instead of closing the connection.
const (
	// FrameHello opens a session: client → server, carries Hello.
	FrameHello FrameType = 1
	// FrameHelloAck completes the handshake: server → client, HelloAck.
	FrameHelloAck FrameType = 2
	// FrameRequest carries a Request envelope.
	FrameRequest FrameType = 3
	// FrameResponse carries a Response envelope.
	FrameResponse FrameType = 4
	// FrameError carries a WireError.
	FrameError FrameType = 5
	// FramePush carries a WatchEvent: server → client, unsolicited, on
	// a connection holding a watch subscription.
	FramePush FrameType = 6
)

// maxFrameType is the highest FrameType this build understands.
const maxFrameType = FramePush

// headerLen is the fixed frame header size: version byte, type byte,
// uint32 big-endian payload length.
const headerLen = 6

// MaxFrameBytes bounds one frame's payload. The length field is
// attacker-controlled bytes off the network, so it is validated before
// any allocation — mirroring the core.MaxPeriod decoder fix — and a
// hostile 0xFFFFFFFF length errors instead of attempting a 4 GiB
// allocation. 64 MiB comfortably fits a 10⁵-sensor snapshot.
const MaxFrameBytes = 1 << 26

// Wire decoding errors. ReadFrame never panics on hostile input; it
// returns one of these (or an io error) so servers can answer with the
// matching typed error frame.
var (
	// ErrBadVersion reports a frame whose version byte is outside
	// [MinVersion, MaxVersion].
	ErrBadVersion = errors.New("controlplane: unsupported protocol version")
	// ErrBadFrameType reports an unknown frame type byte.
	ErrBadFrameType = errors.New("controlplane: unknown frame type")
	// ErrFrameTooLarge reports a length field beyond MaxFrameBytes.
	ErrFrameTooLarge = errors.New("controlplane: frame exceeds MaxFrameBytes")
	// ErrTruncatedFrame reports a frame cut short of its declared
	// length (or a truncated header).
	ErrTruncatedFrame = errors.New("controlplane: truncated frame")
)

// Frame is one decoded wire frame.
type Frame struct {
	Version byte
	Type    FrameType
	Payload []byte
}

// AppendFrame appends the encoded frame to dst and returns the
// extended slice. Encoding is the inverse of ReadFrame byte for byte;
// the golden wire corpus pins it.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = append(dst, f.Version, byte(f.Type))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	return append(dst, f.Payload...)
}

// WriteFrame encodes the frame onto w. Frames above MaxFrameBytes are
// refused symmetrically with the read side.
func WriteFrame(w io.Writer, f Frame) error {
	if len(f.Payload) > MaxFrameBytes {
		return fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, len(f.Payload))
	}
	_, err := w.Write(AppendFrame(make([]byte, 0, headerLen+len(f.Payload)), f))
	return err
}

// ReadFrame decodes one frame from r. A clean EOF before any header
// byte returns io.EOF (the peer closed between frames); any other
// truncation returns ErrTruncatedFrame. The version byte, type byte
// and length field are validated before the payload is allocated, so
// hostile input errors — it never panics and never allocates beyond
// MaxFrameBytes.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: header: %v", ErrTruncatedFrame, err)
	}
	f := Frame{Version: hdr[0], Type: FrameType(hdr[1])}
	if f.Version < MinVersion || f.Version > MaxVersion {
		return Frame{}, fmt.Errorf("%w: version %d (this build speaks %d..%d)",
			ErrBadVersion, f.Version, MinVersion, MaxVersion)
	}
	if f.Type == 0 || f.Type > maxFrameType {
		return Frame{}, fmt.Errorf("%w: type %d", ErrBadFrameType, byte(f.Type))
	}
	n := binary.BigEndian.Uint32(hdr[2:])
	if n > MaxFrameBytes {
		return Frame{}, fmt.Errorf("%w: declared %d bytes", ErrFrameTooLarge, n)
	}
	if n == 0 {
		return f, nil
	}
	f.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, fmt.Errorf("%w: payload: declared %d bytes: %v", ErrTruncatedFrame, n, err)
	}
	return f, nil
}

// NegotiateVersion picks the session version for a client maximum:
// the highest version both peers speak, or an error when the ranges
// do not intersect. Deterministic by construction.
func NegotiateVersion(clientMax byte) (byte, error) {
	if clientMax < MinVersion {
		return 0, fmt.Errorf("%w: client max %d below server min %d",
			ErrBadVersion, clientMax, MinVersion)
	}
	if clientMax > MaxVersion {
		return MaxVersion, nil
	}
	return clientMax, nil
}
