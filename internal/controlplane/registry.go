package controlplane

import (
	"sort"
	"sync"
)

// Snapshot is one immutable, fingerprinted deployment snapshot. Once
// registered it never changes: reconfiguration is a new snapshot with
// the old one as Parent, so the registry's lineage chain is the full
// provenance record for replay and audit.
type Snapshot struct {
	Tenant string
	// Name is the human label from the submit request.
	Name string
	// Fingerprint is the SHA-256 identity of the normalized spec.
	Fingerprint string
	// Parent is the fingerprint of the snapshot this one derives from
	// ("" for a root snapshot).
	Parent string
	// Seq is the global admission sequence number (audit order).
	Seq uint64
	// Spec is the normalized spec. Callers must not mutate it.
	Spec DeploymentSpec
}

// Registry is the first stage of the control-plane composition order:
// it owns the admitted snapshots per tenant, keyed by fingerprint.
// Tenants are fully isolated — one tenant's snapshots are invisible to
// (and cannot collide with) another's. Safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	tenants map[string]map[string]*Snapshot
	seq     uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{tenants: make(map[string]map[string]*Snapshot)}
}

// Get returns the tenant's snapshot with the given fingerprint.
func (r *Registry) Get(tenant, fingerprint string) (*Snapshot, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap, ok := r.tenants[tenant][fingerprint]
	return snap, ok
}

// Count returns the tenant's number of admitted snapshots.
func (r *Registry) Count(tenant string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.tenants[tenant])
}

// register installs the snapshot and stamps its admission sequence
// number, or returns the already-registered snapshot when a concurrent
// identical submit won the race (registration is idempotent on
// fingerprint). It is the final admission step — rejected snapshots
// never reach it, so rejections leave no registry residue.
func (r *Registry) register(snap *Snapshot) (*Snapshot, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	byFP := r.tenants[snap.Tenant]
	if byFP == nil {
		byFP = make(map[string]*Snapshot)
		r.tenants[snap.Tenant] = byFP
	}
	if existing, ok := byFP[snap.Fingerprint]; ok {
		return existing, true
	}
	r.seq++
	snap.Seq = r.seq
	byFP[snap.Fingerprint] = snap
	return snap, false
}

// unregister removes a snapshot whose durable logging failed, so the
// in-memory state never claims what the WAL does not hold. The
// admission sequence counter is not rewound — audit numbers are
// consumed, never reissued.
func (r *Registry) unregister(tenant, fingerprint string) {
	r.mu.Lock()
	delete(r.tenants[tenant], fingerprint)
	r.mu.Unlock()
}

// List returns the tenant's snapshots in admission order.
func (r *Registry) List(tenant string) []SnapshotInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]SnapshotInfo, 0, len(r.tenants[tenant]))
	for _, snap := range r.tenants[tenant] {
		out = append(out, SnapshotInfo{
			Fingerprint: snap.Fingerprint,
			Name:        snap.Name,
			Parent:      snap.Parent,
			Seq:         snap.Seq,
			Sensors:     len(snap.Spec.Sensors),
			Targets:     len(snap.Spec.Targets),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
