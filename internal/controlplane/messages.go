package controlplane

import (
	"encoding/json"
	"fmt"

	"cool"
)

// ErrorCode classifies a typed error frame. Codes are part of the wire
// contract (pinned by the golden corpus); peers dispatch on the code,
// the message is for humans.
type ErrorCode string

// Wire error codes.
const (
	// CodeBadVersion: version negotiation failed or a frame carried an
	// unsupported version byte.
	CodeBadVersion ErrorCode = "bad-version"
	// CodeBadFrame: the frame could not be decoded (truncated,
	// oversize, unknown type, malformed payload).
	CodeBadFrame ErrorCode = "bad-frame"
	// CodeBadRequest: the request envelope was well-formed JSON but
	// semantically invalid (unknown op, missing body, bad arguments).
	CodeBadRequest ErrorCode = "bad-request"
	// CodeNotFound: the referenced tenant/fingerprint has no admitted
	// snapshot.
	CodeNotFound ErrorCode = "not-found"
	// CodeRejected: admission deterministically rejected the snapshot
	// (validation failure or resource limits). No registry residue.
	CodeRejected ErrorCode = "rejected"
	// CodeConflict: the snapshot is already registered with different
	// provenance (same fingerprint, different parent).
	CodeConflict ErrorCode = "conflict"
	// CodeSuspended: the deployment exists but serving is stopped;
	// resume it with a control request.
	CodeSuspended ErrorCode = "suspended"
	// CodeInternal: the engine failed; the message carries the cause.
	CodeInternal ErrorCode = "internal"
	// CodeStorage: the durability layer failed to log the event (WAL
	// append or checkpoint error) — the mutation was NOT admitted, so a
	// restart cannot diverge from what the client was told.
	CodeStorage ErrorCode = "storage"
)

// WireError is the payload of a FrameError. It implements error so the
// client can surface server-side failures directly.
type WireError struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
}

// Error implements error.
func (e *WireError) Error() string {
	return fmt.Sprintf("controlplane: %s: %s", e.Code, e.Message)
}

// Hello opens a session (FrameHello payload).
type Hello struct {
	// MaxVersion is the highest protocol version the client speaks;
	// the server answers with the negotiated session version.
	MaxVersion byte `json:"max_version"`
	// Client names the peer for logs ("coolctl/1.0").
	Client string `json:"client,omitempty"`
}

// HelloAck completes the handshake (FrameHelloAck payload).
type HelloAck struct {
	// Version is the negotiated session version.
	Version byte `json:"version"`
	// Server names the daemon build.
	Server string `json:"server"`
}

// Op selects the request kind inside a Request envelope.
type Op string

// Request operations.
const (
	OpSubmit  Op = "submit"
	OpPlan    Op = "plan"
	OpReplan  Op = "replan"
	OpQuery   Op = "query"
	OpList    Op = "list"
	OpControl Op = "control"
	OpWatch   Op = "watch"
)

// SensorSpec is one sensor of a deployment spec: a disk footprint at
// (X, Y) with the given sensing radius. Sensor IDs are ordinal in
// slice order, matching cool.NewNetwork.
type SensorSpec struct {
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Range float64 `json:"range"`
}

// TargetSpec is one monitored target. Weight defaults to 1.
type TargetSpec struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Weight float64 `json:"weight,omitempty"`
}

// Utility kinds accepted by DeploymentSpec.Utility.
const (
	// UtilityTargets is weighted target coverage
	// (cool.NewTargetCountUtility). The default.
	UtilityTargets = "targets"
	// UtilityDetection is the probabilistic detection utility under a
	// fixed per-link probability (cool.NewDetectionUtility with
	// cool.FixedProb(DetectProb)).
	UtilityDetection = "detection"
)

// DeploymentSpec is the wire description of one deployment: the
// geometry, the utility model and the charging ratio. Its normalized
// form (see Normalize) is the unit of identity — the snapshot
// fingerprint is a digest of the normalized spec, so two specs that
// normalize equal are the same snapshot.
type DeploymentSpec struct {
	// Rho is the charging ratio ρ = Tr/Td; ρ or 1/ρ must be integral
	// (cool.PeriodFromRho).
	Rho float64 `json:"rho"`
	// Utility selects the model: UtilityTargets (default) or
	// UtilityDetection.
	Utility string `json:"utility,omitempty"`
	// DetectProb is the fixed detection probability for
	// UtilityDetection (in (0, 1]); must be 0 for UtilityTargets.
	DetectProb float64      `json:"detect_prob,omitempty"`
	Sensors    []SensorSpec `json:"sensors"`
	Targets    []TargetSpec `json:"targets"`
}

// SubmitRequest offers a deployment snapshot for admission.
type SubmitRequest struct {
	// Name is a human label recorded in the registry; it is provenance
	// metadata, not identity — the fingerprint covers the spec only.
	Name string `json:"name,omitempty"`
	// Parent is the fingerprint of the snapshot this one derives from
	// (lineage for replay/audit); it must already be registered for
	// the tenant, or empty for a root snapshot.
	Parent string         `json:"parent,omitempty"`
	Spec   DeploymentSpec `json:"spec"`
}

// SubmitResponse reports the deterministic admission decision.
type SubmitResponse struct {
	// Fingerprint identifies the admitted snapshot.
	Fingerprint string `json:"fingerprint"`
	// Seq is the registry admission sequence number (audit order).
	Seq uint64 `json:"seq"`
	// Resubmitted reports an idempotent re-admission of an already
	// registered snapshot.
	Resubmitted bool `json:"resubmitted,omitempty"`
	// Sensors and Targets echo the normalized sizes.
	Sensors int `json:"sensors"`
	Targets int `json:"targets"`
}

// Plan engines accepted by PlanRequest.Engine. Under the default
// utility objective all produce the same schedule bits ("incremental"
// initializes bit-identically to the greedy); they differ in cost and
// in whether a live replanning session is established. The lifetime
// objective plugs its schedulers into the same engine seam.
const (
	// EngineIncremental plans via Planner.Incremental and keeps the
	// live Repairer session for replan traffic. The utility default.
	EngineIncremental = "incremental"
	// EngineGreedy is the one-shot paper greedy (Planner.Greedy).
	EngineGreedy = "greedy"
	// EngineLazy is the one-shot CELF lazy greedy (Planner.LazyGreedy).
	EngineLazy = "lazy"
	// EngineParallel is the sharded-scan parallel greedy
	// (Planner.ParallelGreedy), bit-identical to EngineGreedy.
	EngineParallel = "parallel"

	// EngineHEF is the high-energy-first lifetime scheduler. The
	// default under ObjectiveLifetime.
	EngineHEF = "hef"
	// EngineStripCover is the rotating disjoint-cover-group lifetime
	// scheduler.
	EngineStripCover = "strip-cover"
	// EngineLifetimeExact is the exhaustive lifetime reference (tiny
	// deployments only).
	EngineLifetimeExact = "lifetime-exact"
)

// Objective names accepted by PlanRequest.Objective. The empty string
// means ObjectiveUtility, which keeps every pre-objective client and
// frame encoding working unchanged.
const (
	ObjectiveUtility  = "utility"
	ObjectiveLifetime = "lifetime"
)

// PlanRequest computes (or returns the committed) schedule of an
// admitted snapshot.
type PlanRequest struct {
	Fingerprint string `json:"fingerprint"`
	// Engine selects the planning engine; empty means
	// EngineIncremental under the utility objective and EngineHEF
	// under the lifetime objective.
	Engine string `json:"engine,omitempty"`
	// Workers bounds EngineParallel's scan concurrency (<= 0 NumCPU).
	Workers int `json:"workers,omitempty"`
	// Objective selects what to optimize: "" or ObjectiveUtility for
	// the per-period submodular utility (the historical behavior), or
	// ObjectiveLifetime for coverage lifetime under battery budgets.
	// The field is omitted when empty, so existing encodings are
	// byte-identical.
	Objective string `json:"objective,omitempty"`
}

// LifetimePlanInfo is the lifetime half of a PlanResponse: the
// verified coverage lifetime, the horizon it was planned against, the
// cover-group count (strip-cover only) and the per-slot active sets.
type LifetimePlanInfo struct {
	Lifetime int `json:"lifetime"`
	Horizon  int `json:"horizon"`
	Groups   int `json:"groups,omitempty"`
	// ActiveSlots[t] is the sorted active set of slot t.
	ActiveSlots [][]int `json:"active_slots"`
}

// PlanResponse carries the planned schedule. Exactly one of Schedule
// (utility objective) and Lifetime (lifetime objective) is set; Mode
// and Slots describe the periodic schedule and are empty for lifetime
// plans.
type PlanResponse struct {
	Engine   string         `json:"engine"`
	Schedule *cool.Schedule `json:"schedule,omitempty"`
	// Utility is the period utility Σ_t U(S_t) of the schedule.
	Utility float64 `json:"utility"`
	Mode    string  `json:"mode,omitempty"`
	Slots   int     `json:"slots,omitempty"`
	// Objective echoes the resolved objective of the request; empty
	// means utility (pre-objective encodings are byte-identical).
	Objective string `json:"objective,omitempty"`
	// Lifetime carries the lifetime-objective result.
	Lifetime *LifetimePlanInfo `json:"lifetime,omitempty"`
}

// Replan operations accepted by ReplanRequest.Op.
const (
	// ReplanKill removes live sensors (Incremental.KillSensors).
	ReplanKill = "kill"
	// ReplanDeploy re-activates absent sensors
	// (Incremental.DeploySensors).
	ReplanDeploy = "deploy"
	// ReplanDrift re-targets the schedule at a new charging ratio
	// (Incremental.UpdateRho).
	ReplanDrift = "drift"
)

// ReplanRequest applies one fleet perturbation through the live
// incremental session, repairing in O(perturbation).
type ReplanRequest struct {
	Fingerprint string `json:"fingerprint"`
	// Op is ReplanKill, ReplanDeploy or ReplanDrift.
	Op string `json:"replan_op"`
	// IDs are the sensors to kill/deploy (unused for drift).
	IDs []int `json:"ids,omitempty"`
	// Rho is the new charging ratio for drift (unused otherwise).
	Rho float64 `json:"rho,omitempty"`
	// WithGap additionally computes the utility gap versus a
	// from-scratch replan (the O(fleet) yardstick, off the hot path).
	WithGap bool `json:"with_gap,omitempty"`
	// WithSchedule additionally returns the repaired schedule.
	WithSchedule bool `json:"with_schedule,omitempty"`
}

// ReplanResponse reports the repair: the perturbation's blast radius
// and the sweep's work, exactly as cool.RepairStats reports them for a
// direct Incremental call.
type ReplanResponse struct {
	Changed       int     `json:"changed"`
	Dirty         int     `json:"dirty"`
	Rounds        int     `json:"rounds"`
	Moves         int     `json:"moves"`
	Full          bool    `json:"full,omitempty"`
	UtilityBefore float64 `json:"utility_before"`
	Utility       float64 `json:"utility"`
	// Gap is the percent utility gap versus a full replan (only when
	// requested).
	Gap *float64 `json:"gap,omitempty"`
	// Schedule is the repaired committed schedule (only when
	// requested).
	Schedule *cool.Schedule `json:"schedule,omitempty"`
}

// Query subjects accepted by QueryRequest.What.
const (
	QuerySchedule = "schedule"
	QueryUtility  = "utility"
	QueryGap      = "gap"
	QueryStatus   = "status"
)

// QueryRequest reads state from a deployment's live session without
// mutating it.
type QueryRequest struct {
	Fingerprint string `json:"fingerprint"`
	What        string `json:"what"`
}

// QueryResponse carries the requested view. Fields beyond the
// requested subject are zero.
type QueryResponse struct {
	Schedule *cool.Schedule `json:"schedule,omitempty"`
	Utility  *float64       `json:"utility,omitempty"`
	Gap      *float64       `json:"gap,omitempty"`
	Status   *StatusInfo    `json:"status,omitempty"`
}

// StatusInfo is the QueryStatus view of a deployment.
type StatusInfo struct {
	Fingerprint string  `json:"fingerprint"`
	Name        string  `json:"name,omitempty"`
	Parent      string  `json:"parent,omitempty"`
	Seq         uint64  `json:"seq"`
	Mode        string  `json:"mode"`
	Slots       int     `json:"slots"`
	Rho         float64 `json:"rho"`
	Present     int     `json:"present"`
	Suspended   bool    `json:"suspended"`
	// Live reports whether an incremental session is established.
	Live bool `json:"live"`
	// Objective is the deployment's last-planned objective ("utility"
	// or "lifetime"); empty until the first plan establishes one, so
	// pre-objective encodings are byte-identical.
	Objective string `json:"objective,omitempty"`
	// Watchers counts connections subscribed to this deployment's push
	// stream.
	Watchers int `json:"watchers,omitempty"`
}

// ListRequest enumerates the tenant's admitted snapshots.
type ListRequest struct{}

// SnapshotInfo is one registry entry in admission order — the
// provenance record (fingerprint + parent lineage) kept for replay and
// audit.
type SnapshotInfo struct {
	Fingerprint string `json:"fingerprint"`
	Name        string `json:"name,omitempty"`
	Parent      string `json:"parent,omitempty"`
	Seq         uint64 `json:"seq"`
	Sensors     int    `json:"sensors"`
	Targets     int    `json:"targets"`
	// Objective is the deployment's last-planned objective; empty until
	// a plan establishes one (pre-objective encodings byte-identical).
	Objective string `json:"objective,omitempty"`
}

// ListResponse carries the tenant's snapshots in admission order.
type ListResponse struct {
	Snapshots []SnapshotInfo `json:"snapshots"`
}

// Watch operations accepted by WatchRequest.Op.
const (
	// WatchSubscribe dedicates the connection to a deployment's push
	// stream: after the WatchResponse, the server sends a FramePush per
	// successful plan/replan until unsubscribe or disconnect.
	WatchSubscribe = "subscribe"
	// WatchUnsubscribe ends the connection's subscription to the
	// deployment and returns it to request/response use.
	WatchUnsubscribe = "unsubscribe"
)

// WatchRequest subscribes the connection to (or unsubscribes it from)
// a deployment's schedule pushes.
type WatchRequest struct {
	Fingerprint string `json:"fingerprint"`
	// Op is WatchSubscribe or WatchUnsubscribe.
	Op string `json:"watch_op"`
}

// WatchResponse acknowledges a watch change.
type WatchResponse struct {
	// Subscribed reports the connection's subscription state for the
	// deployment after the request.
	Subscribed bool `json:"subscribed"`
	// Watchers counts the deployment's subscribed connections after the
	// request.
	Watchers int `json:"watchers"`
	// Events is the deployment's push-event counter at the time of the
	// request — the first push the subscriber sees has Seq == Events+1,
	// so a reconnecting watcher can detect missed events.
	Events uint64 `json:"events"`
}

// WatchEvent is the payload of a FramePush: one successful plan or
// replan on a watched deployment, carrying exactly the payload the
// acting client received (the watcher-vs-poller differential holds
// these equal bit for bit), except that a pushed replan always carries
// the repaired schedule — a watcher cannot ask for it later.
type WatchEvent struct {
	Fingerprint string `json:"fingerprint"`
	// Seq numbers the deployment's pushes from 1, gap-free per
	// deployment.
	Seq uint64 `json:"seq"`
	// Kind is "plan" or "replan"; exactly the matching body is set.
	Kind   string          `json:"kind"`
	Plan   *PlanResponse   `json:"plan,omitempty"`
	Replan *ReplanResponse `json:"replan,omitempty"`
}

// Watch-event kinds.
const (
	WatchEventPlan   = "plan"
	WatchEventReplan = "replan"
)

// DecodeWatchEvent decodes a FramePush payload. It never panics on
// hostile payloads (FuzzWireDecode).
func DecodeWatchEvent(payload []byte) (*WatchEvent, error) {
	var ev WatchEvent
	if err := json.Unmarshal(payload, &ev); err != nil {
		return nil, fmt.Errorf("controlplane: decoding watch event: %w", err)
	}
	return &ev, nil
}

// Control operations accepted by ControlRequest.Op — the state of the
// serving plane changes without redeploy (the control-protocol
// start/stop feature).
const (
	// ControlSuspend stops serving plan/replan/query for a deployment.
	ControlSuspend = "suspend"
	// ControlResume restarts serving for a suspended deployment.
	ControlResume = "resume"
	// ControlReset drops the live incremental session; the next plan
	// starts from scratch. The registry snapshot is untouched.
	ControlReset = "reset"
	// ControlLimits reconfigures admission limits at runtime.
	ControlLimits = "limits"
)

// ControlRequest changes serving state.
type ControlRequest struct {
	// Op is one of the Control* constants.
	Op string `json:"control_op"`
	// Fingerprint selects the deployment (suspend/resume/reset).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Limits are the new admission limits (ControlLimits); zero fields
	// keep their current values.
	Limits *Limits `json:"limits,omitempty"`
}

// ControlResponse acknowledges a control change and echoes the
// resulting state.
type ControlResponse struct {
	Suspended bool    `json:"suspended,omitempty"`
	Limits    *Limits `json:"limits,omitempty"`
}

// Request is the envelope of a FrameRequest: the op tag, the tenant,
// and exactly the body matching the op.
type Request struct {
	Op     Op     `json:"op"`
	Tenant string `json:"tenant"`

	Submit  *SubmitRequest  `json:"submit,omitempty"`
	Plan    *PlanRequest    `json:"plan,omitempty"`
	Replan  *ReplanRequest  `json:"replan,omitempty"`
	Query   *QueryRequest   `json:"query,omitempty"`
	List    *ListRequest    `json:"list,omitempty"`
	Control *ControlRequest `json:"control,omitempty"`
	Watch   *WatchRequest   `json:"watch,omitempty"`
}

// Response is the envelope of a FrameResponse, mirroring Request.
type Response struct {
	Op Op `json:"op"`

	Submit  *SubmitResponse  `json:"submit,omitempty"`
	Plan    *PlanResponse    `json:"plan,omitempty"`
	Replan  *ReplanResponse  `json:"replan,omitempty"`
	Query   *QueryResponse   `json:"query,omitempty"`
	List    *ListResponse    `json:"list,omitempty"`
	Control *ControlResponse `json:"control,omitempty"`
	Watch   *WatchResponse   `json:"watch,omitempty"`
}

// DecodeRequest decodes and validates a FrameRequest payload: known
// op, non-empty tenant, and exactly the matching body present. It
// never panics on hostile payloads (FuzzWireDecode).
func DecodeRequest(payload []byte) (*Request, error) {
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil {
		return nil, fmt.Errorf("controlplane: decoding request: %w", err)
	}
	if req.Tenant == "" {
		return nil, fmt.Errorf("controlplane: request missing tenant")
	}
	bodies := 0
	for _, present := range []bool{req.Submit != nil, req.Plan != nil,
		req.Replan != nil, req.Query != nil, req.List != nil, req.Control != nil,
		req.Watch != nil} {
		if present {
			bodies++
		}
	}
	var want bool
	switch req.Op {
	case OpSubmit:
		want = req.Submit != nil
	case OpPlan:
		want = req.Plan != nil
	case OpReplan:
		want = req.Replan != nil
	case OpQuery:
		want = req.Query != nil
	case OpList:
		want = req.List != nil
	case OpControl:
		want = req.Control != nil
	case OpWatch:
		want = req.Watch != nil
	default:
		return nil, fmt.Errorf("controlplane: unknown op %q", req.Op)
	}
	if !want || bodies != 1 {
		return nil, fmt.Errorf("controlplane: op %q wants exactly its own body (got %d bodies)", req.Op, bodies)
	}
	if req.Plan != nil {
		if _, err := cool.ParseObjective(req.Plan.Objective); err != nil {
			return nil, fmt.Errorf("controlplane: plan request: unknown objective %q", req.Plan.Objective)
		}
	}
	return &req, nil
}

// DecodeResponse decodes a FrameResponse payload.
func DecodeResponse(payload []byte) (*Response, error) {
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, fmt.Errorf("controlplane: decoding response: %w", err)
	}
	return &resp, nil
}

// DecodeHello decodes a FrameHello payload.
func DecodeHello(payload []byte) (*Hello, error) {
	var h Hello
	if err := json.Unmarshal(payload, &h); err != nil {
		return nil, fmt.Errorf("controlplane: decoding hello: %w", err)
	}
	return &h, nil
}

// DecodeHelloAck decodes a FrameHelloAck payload.
func DecodeHelloAck(payload []byte) (*HelloAck, error) {
	var h HelloAck
	if err := json.Unmarshal(payload, &h); err != nil {
		return nil, fmt.Errorf("controlplane: decoding hello ack: %w", err)
	}
	return &h, nil
}

// DecodeWireError decodes a FrameError payload. A malformed error
// payload still yields a non-nil *WireError (CodeBadFrame) so callers
// always have a typed error to propagate.
func DecodeWireError(payload []byte) *WireError {
	var we WireError
	if err := json.Unmarshal(payload, &we); err != nil || we.Code == "" {
		return &WireError{Code: CodeBadFrame, Message: fmt.Sprintf("undecodable error frame (%d bytes)", len(payload))}
	}
	return &we
}

// encodeFrame marshals v and wraps it in a frame of the given type.
func encodeFrame(version byte, t FrameType, v any) (Frame, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return Frame{}, fmt.Errorf("controlplane: encoding %T: %w", v, err)
	}
	return Frame{Version: version, Type: t, Payload: payload}, nil
}
