package controlplane

import (
	"errors"
	"fmt"
	"math"
	"net"
	"reflect"
	"sync"
	"testing"

	"cool"
	"cool/internal/stats"
)

// newTestPair starts an in-process server and a connected client over
// a net.Pipe — the whole wire stack (framing, handshake, dispatch)
// with no sockets.
func newTestPair(t *testing.T, cfg Config) (*Client, *Server) {
	t.Helper()
	srv := NewServer(cfg)
	cc, sc := net.Pipe()
	go srv.ServeConn(sc)
	cli, err := NewClient(cc, "e2e-test")
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return cli, srv
}

// newClient attaches one more client connection to a running server.
func newClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	cc, sc := net.Pipe()
	go srv.ServeConn(sc)
	cli, err := NewClient(cc, "e2e-test")
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// testSpec builds a deterministic random deployment.
func testSpec(n, m int, rho float64, seed uint64) DeploymentSpec {
	rng := stats.NewRNG(seed)
	const side, reach = 100.0, 22.0
	spec := DeploymentSpec{Rho: rho}
	for i := 0; i < n; i++ {
		spec.Sensors = append(spec.Sensors, SensorSpec{
			X: rng.Float64() * side, Y: rng.Float64() * side, Range: reach,
		})
	}
	for j := 0; j < m; j++ {
		spec.Targets = append(spec.Targets, TargetSpec{
			X: rng.Float64() * side, Y: rng.Float64() * side, Weight: 1 + rng.Float64(),
		})
	}
	return spec
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// mustEqualSchedules asserts bit-identity of two schedules: same mode,
// same period, same assignment of every sensor.
func mustEqualSchedules(t *testing.T, label string, got, want *cool.Schedule) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil schedule (got %v, want %v)", label, got, want)
	}
	if got.Mode() != want.Mode() || got.Period() != want.Period() {
		t.Fatalf("%s: shape mismatch: got (%v, %d), want (%v, %d)",
			label, got.Mode(), got.Period(), want.Mode(), want.Period())
	}
	if ga, wa := got.Assignment(), want.Assignment(); !reflect.DeepEqual(ga, wa) {
		t.Fatalf("%s: assignment mismatch:\n got %v\nwant %v", label, ga, wa)
	}
}

// sessionEvent is one scripted perturbation of the differential
// session — the wire-side mirror of a coolsim -kill/-deploy/-drift
// script.
type sessionEvent struct {
	op  string
	ids []int
	rho float64
}

// differentialSession drives the full perturbation script through a
// live client↔server pair and, in lockstep, through direct
// Planner.Incremental calls, asserting every response bit-identical:
// the committed schedule, the maintained utility, every RepairStats
// field, and the reported gap versus a full replan. This is the proof
// that the daemon is a transparent transport over the engines.
func differentialSession(t *testing.T, cli *Client, tenant string, spec DeploymentSpec, events []sessionEvent) {
	t.Helper()

	// Wire side: admission + initial plan.
	sub, err := cli.Submit(tenant, SubmitRequest{Name: "diff", Spec: spec})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	plan, err := cli.Plan(tenant, PlanRequest{Fingerprint: sub.Fingerprint})
	if err != nil {
		t.Fatalf("plan: %v", err)
	}

	// Direct side: the exact same construction the daemon performs.
	norm, err := Normalize(spec)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	planner, err := BuildPlanner(norm)
	if err != nil {
		t.Fatalf("build planner: %v", err)
	}
	inc, err := planner.Incremental()
	if err != nil {
		t.Fatalf("incremental: %v", err)
	}
	directSched, err := inc.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSchedules(t, "initial plan", plan.Schedule, directSched)
	if !sameBits(plan.Utility, inc.Utility()) {
		t.Fatalf("initial utility: wire %v, direct %v", plan.Utility, inc.Utility())
	}

	for i, ev := range events {
		label := fmt.Sprintf("event %d (%s %v rho=%g)", i, ev.op, ev.ids, ev.rho)
		wire, err := cli.Replan(tenant, ReplanRequest{
			Fingerprint:  sub.Fingerprint,
			Op:           ev.op,
			IDs:          ev.ids,
			Rho:          ev.rho,
			WithGap:      true,
			WithSchedule: true,
		})
		if err != nil {
			t.Fatalf("%s: wire replan: %v", label, err)
		}
		var st cool.RepairStats
		switch ev.op {
		case ReplanKill:
			st, err = inc.KillSensors(ev.ids)
		case ReplanDeploy:
			st, err = inc.DeploySensors(ev.ids)
		case ReplanDrift:
			st, err = inc.UpdateRho(ev.rho)
		}
		if err != nil {
			t.Fatalf("%s: direct replan: %v", label, err)
		}
		if wire.Changed != st.Changed || wire.Dirty != st.Dirty ||
			wire.Rounds != st.Rounds || wire.Moves != st.Moves || wire.Full != st.Full {
			t.Fatalf("%s: stats mismatch: wire %+v, direct %+v", label, wire, st)
		}
		if !sameBits(wire.UtilityBefore, st.UtilityBefore) || !sameBits(wire.Utility, st.Utility) {
			t.Fatalf("%s: utility mismatch: wire (%v → %v), direct (%v → %v)",
				label, wire.UtilityBefore, wire.Utility, st.UtilityBefore, st.Utility)
		}
		directGap, err := inc.Gap()
		if err != nil {
			t.Fatal(err)
		}
		if wire.Gap == nil || !sameBits(*wire.Gap, directGap) {
			t.Fatalf("%s: gap mismatch: wire %v, direct %v", label, wire.Gap, directGap)
		}
		directSched, err := inc.Schedule()
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSchedules(t, label, wire.Schedule, directSched)
		if err := directSched.CheckFeasible(inc.Period()); err != nil {
			t.Fatalf("%s: committed schedule infeasible: %v", label, err)
		}
	}

	// Final state through every query path.
	qs, err := cli.Query(tenant, QueryRequest{Fingerprint: sub.Fingerprint, What: QuerySchedule})
	if err != nil {
		t.Fatal(err)
	}
	finalSched, err := inc.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSchedules(t, "final query", qs.Schedule, finalSched)
	qu, err := cli.Query(tenant, QueryRequest{Fingerprint: sub.Fingerprint, What: QueryUtility})
	if err != nil {
		t.Fatal(err)
	}
	if qu.Utility == nil || !sameBits(*qu.Utility, inc.Utility()) {
		t.Fatalf("final utility: wire %v, direct %v", qu.Utility, inc.Utility())
	}
	qg, err := cli.Query(tenant, QueryRequest{Fingerprint: sub.Fingerprint, What: QueryGap})
	if err != nil {
		t.Fatal(err)
	}
	directGap, err := inc.Gap()
	if err != nil {
		t.Fatal(err)
	}
	if qg.Gap == nil || !sameBits(*qg.Gap, directGap) {
		t.Fatalf("final gap: wire %v, direct %v", qg.Gap, directGap)
	}
	st, err := cli.Query(tenant, QueryRequest{Fingerprint: sub.Fingerprint, What: QueryStatus})
	if err != nil {
		t.Fatal(err)
	}
	if st.Status == nil || st.Status.Present != inc.NumPresent() ||
		st.Status.Mode != inc.Mode().String() || st.Status.Slots != inc.Period().Slots() {
		t.Fatalf("status mismatch: wire %+v, direct present=%d mode=%v slots=%d",
			st.Status, inc.NumPresent(), inc.Mode(), inc.Period().Slots())
	}
}

// fullScript is the canonical -kill/-deploy/-drift session: node
// deaths, a reserve coming back, weather drift across ρ = 1 (regime
// flip, full replan) and back.
func fullScript() []sessionEvent {
	return []sessionEvent{
		{op: ReplanKill, ids: []int{3, 7, 11}},
		{op: ReplanDeploy, ids: []int{7}},
		{op: ReplanDrift, rho: 0.5},
		{op: ReplanKill, ids: []int{0, 5}},
		{op: ReplanDrift, rho: 3},
		{op: ReplanDeploy, ids: []int{3, 11}},
	}
}

// TestE2EDifferentialSession is the tentpole harness: a whole
// perturbation session through the wire, bit-identical to direct
// library calls at every step.
func TestE2EDifferentialSession(t *testing.T) {
	cli, _ := newTestPair(t, Config{})
	differentialSession(t, cli, "acme", testSpec(40, 25, 3, 42), fullScript())
}

// TestE2EDifferentialDetection runs the differential session on the
// probabilistic detection utility (the second engine family behind the
// same admission path).
func TestE2EDifferentialDetection(t *testing.T) {
	spec := testSpec(30, 18, 2, 99)
	spec.Utility = UtilityDetection
	spec.DetectProb = 0.4
	cli, _ := newTestPair(t, Config{})
	differentialSession(t, cli, "acme", spec, fullScript())
}

// TestE2EDifferentialRace drives three tenants' full perturbation
// sessions concurrently through one daemon — each over its own
// connection, each differentially checked — with the job pool squeezed
// to 2 so requests actually queue. CI runs this under -race.
func TestE2EDifferentialRace(t *testing.T) {
	_, srv := newTestPair(t, Config{MaxJobs: 2})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		cli := newClient(t, srv)
		tenant := fmt.Sprintf("tenant-%d", i)
		spec := testSpec(30+3*i, 20, 3, 1000+uint64(i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			differentialSession(t, cli, tenant, spec, fullScript())
		}()
	}
	wg.Wait()
}

// TestE2EEngineConsistency proves every plan engine served over the
// wire returns the same schedule bits (they are all locked to the
// greedy by the PR 5/7 equivalence harnesses). Batch-engine utilities
// are bit-identical to the direct PeriodUtility call; the incremental
// engine maintains its utility by marginal-gain accumulation, so it
// matches the same sum up to float re-summation order.
func TestE2EEngineConsistency(t *testing.T) {
	cli, _ := newTestPair(t, Config{})
	spec := testSpec(35, 22, 4, 7)
	sub, err := cli.Submit("acme", SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	base, err := cli.Plan("acme", PlanRequest{Fingerprint: sub.Fingerprint, Engine: EngineGreedy})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := Normalize(spec)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := BuildPlanner(norm)
	if err != nil {
		t.Fatal(err)
	}
	directSched, err := planner.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSchedules(t, "greedy vs direct", base.Schedule, directSched)
	if !sameBits(base.Utility, planner.PeriodUtility(directSched)) {
		t.Fatalf("greedy utility: wire %v, direct %v", base.Utility, planner.PeriodUtility(directSched))
	}
	for _, engine := range []string{EngineLazy, EngineParallel} {
		got, err := cli.Plan("acme", PlanRequest{Fingerprint: sub.Fingerprint, Engine: engine, Workers: 3})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		mustEqualSchedules(t, engine, got.Schedule, base.Schedule)
		if !sameBits(got.Utility, base.Utility) {
			t.Fatalf("%s: utility %v, want %v", engine, got.Utility, base.Utility)
		}
	}
	inc, err := cli.Plan("acme", PlanRequest{Fingerprint: sub.Fingerprint, Engine: EngineIncremental})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSchedules(t, EngineIncremental, inc.Schedule, base.Schedule)
	if diff := math.Abs(inc.Utility - base.Utility); diff > 1e-9*math.Abs(base.Utility) {
		t.Fatalf("incremental utility %v too far from greedy %v", inc.Utility, base.Utility)
	}
	if _, err := cli.Plan("acme", PlanRequest{Fingerprint: sub.Fingerprint, Engine: "simulated-annealing"}); !isCode(err, CodeBadRequest) {
		t.Fatalf("unknown engine: want bad-request, got %v", err)
	}
}

// TestE2ELifetimeObjective exercises the objective field of the plan
// op: lifetime plans flow through the same engine seam, match a direct
// facade call exactly, and the typed-error surface rejects unknown
// objectives, lifetime-incompatible engines and detection deployments.
func TestE2ELifetimeObjective(t *testing.T) {
	cli, _ := newTestPair(t, Config{})
	spec := testSpec(10, 5, 1, 21)
	sub, err := cli.Submit("acme", SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}

	norm, err := Normalize(spec)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := BuildPlanner(norm)
	if err != nil {
		t.Fatal(err)
	}

	for wireEngine, alg := range map[string]cool.Algorithm{
		"":                  cool.AlgorithmHEF, // default engine under the lifetime objective
		EngineHEF:           cool.AlgorithmHEF,
		EngineStripCover:    cool.AlgorithmStripCover,
		EngineLifetimeExact: cool.AlgorithmLifetimeExact,
	} {
		resp, err := cli.Plan("acme", PlanRequest{
			Fingerprint: sub.Fingerprint, Engine: wireEngine, Objective: ObjectiveLifetime,
		})
		if err != nil {
			t.Fatalf("engine %q: %v", wireEngine, err)
		}
		if resp.Objective != ObjectiveLifetime || resp.Lifetime == nil || resp.Schedule != nil {
			t.Fatalf("engine %q: response (objective %q, lifetime %v, schedule %v)",
				wireEngine, resp.Objective, resp.Lifetime, resp.Schedule)
		}
		if resp.Engine != string(alg) {
			t.Errorf("engine %q: echoed %q, want %q", wireEngine, resp.Engine, alg)
		}
		direct, err := planner.Plan(cool.PlanRequest{Objective: cool.ObjectiveLifetime, Algorithm: alg})
		if err != nil {
			t.Fatalf("direct %s: %v", alg, err)
		}
		if resp.Lifetime.Lifetime != direct.Lifetime.Lifetime {
			t.Errorf("%s: wire lifetime %d, direct %d", alg, resp.Lifetime.Lifetime, direct.Lifetime.Lifetime)
		}
		if resp.Lifetime.Horizon != direct.Lifetime.Horizon {
			t.Errorf("%s: wire horizon %d, direct %d", alg, resp.Lifetime.Horizon, direct.Lifetime.Horizon)
		}
		if len(resp.Lifetime.ActiveSlots) != direct.Lifetime.Schedule.Slots() {
			t.Fatalf("%s: wire has %d slots, direct %d", alg,
				len(resp.Lifetime.ActiveSlots), direct.Lifetime.Schedule.Slots())
		}
		for slot, got := range resp.Lifetime.ActiveSlots {
			want := direct.Lifetime.Schedule.ActiveAt(slot)
			if len(got) != len(want) {
				t.Fatalf("%s slot %d: wire %v, direct %v", alg, slot, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s slot %d: wire %v, direct %v", alg, slot, got, want)
				}
			}
		}
	}

	// A utility engine cannot plan the lifetime objective.
	if _, err := cli.Plan("acme", PlanRequest{
		Fingerprint: sub.Fingerprint, Engine: EngineGreedy, Objective: ObjectiveLifetime,
	}); !isCode(err, CodeBadRequest) {
		t.Fatalf("utility engine under lifetime objective: want bad-request, got %v", err)
	}
	// Unknown objectives die at decode time as malformed requests.
	if _, err := cli.Plan("acme", PlanRequest{
		Fingerprint: sub.Fingerprint, Objective: "throughput",
	}); err == nil {
		t.Fatal("unknown objective accepted")
	}
	// Detection deployments have no binary coverage to keep alive.
	dspec := testSpec(8, 4, 1, 22)
	dspec.Utility = UtilityDetection
	dspec.DetectProb = 0.6
	dsub, err := cli.Submit("acme", SubmitRequest{Spec: dspec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Plan("acme", PlanRequest{
		Fingerprint: dsub.Fingerprint, Objective: ObjectiveLifetime,
	}); !isCode(err, CodeBadRequest) {
		t.Fatalf("detection deployment under lifetime objective: want bad-request, got %v", err)
	}
	// The utility objective spelled out explicitly behaves exactly like
	// the default empty objective.
	explicit, err := cli.Plan("acme", PlanRequest{
		Fingerprint: sub.Fingerprint, Engine: EngineGreedy, Objective: ObjectiveUtility,
	})
	if err != nil {
		t.Fatal(err)
	}
	implicit, err := cli.Plan("acme", PlanRequest{Fingerprint: sub.Fingerprint, Engine: EngineGreedy})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSchedules(t, "explicit-vs-implicit utility objective", explicit.Schedule, implicit.Schedule)
	if !sameBits(explicit.Utility, implicit.Utility) {
		t.Fatalf("explicit utility %v, implicit %v", explicit.Utility, implicit.Utility)
	}
}

// TestE2ESuspendResumeReset exercises serving-state changes without
// redeploy: suspend blocks the data plane (typed error), resume
// restores it, reset drops the live session and the next plan
// re-initializes bit-identically.
func TestE2ESuspendResumeReset(t *testing.T) {
	cli, _ := newTestPair(t, Config{})
	spec := testSpec(25, 15, 3, 11)
	sub, err := cli.Submit("acme", SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	first, err := cli.Plan("acme", PlanRequest{Fingerprint: sub.Fingerprint})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := cli.Control("acme", ControlRequest{Op: ControlSuspend, Fingerprint: sub.Fingerprint}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Plan("acme", PlanRequest{Fingerprint: sub.Fingerprint}); !isCode(err, CodeSuspended) {
		t.Fatalf("suspended plan: want typed suspended error, got %v", err)
	}
	st, err := cli.Query("acme", QueryRequest{Fingerprint: sub.Fingerprint, What: QueryStatus})
	if err != nil || st.Status == nil || !st.Status.Suspended {
		t.Fatalf("status while suspended: %+v, %v", st, err)
	}

	if _, err := cli.Control("acme", ControlRequest{Op: ControlResume, Fingerprint: sub.Fingerprint}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Replan("acme", ReplanRequest{Fingerprint: sub.Fingerprint, Op: ReplanKill, IDs: []int{1}}); err != nil {
		t.Fatalf("replan after resume: %v", err)
	}

	if _, err := cli.Control("acme", ControlRequest{Op: ControlReset, Fingerprint: sub.Fingerprint}); err != nil {
		t.Fatal(err)
	}
	fresh, err := cli.Plan("acme", PlanRequest{Fingerprint: sub.Fingerprint})
	if err != nil {
		t.Fatal(err)
	}
	mustEqualSchedules(t, "plan after reset", fresh.Schedule, first.Schedule)
}

// TestE2ETypedErrors checks the typed error frames a client sees for
// the common failure classes.
func TestE2ETypedErrors(t *testing.T) {
	cli, _ := newTestPair(t, Config{})
	if _, err := cli.Plan("acme", PlanRequest{Fingerprint: "no-such"}); !isCode(err, CodeNotFound) {
		t.Fatalf("unknown fingerprint: want not-found, got %v", err)
	}
	bad := testSpec(10, 5, 3, 1)
	bad.Rho = 2.5 // neither ρ nor 1/ρ integral
	if _, err := cli.Submit("acme", SubmitRequest{Spec: bad}); !isCode(err, CodeRejected) {
		t.Fatalf("invalid rho: want rejected, got %v", err)
	}
	spec := testSpec(10, 5, 3, 1)
	sub, err := cli.Submit("acme", SubmitRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Replan("acme", ReplanRequest{Fingerprint: sub.Fingerprint, Op: "explode"}); !isCode(err, CodeBadRequest) {
		t.Fatalf("unknown replan op: want bad-request, got %v", err)
	}
}

// TestE2EVersionNegotiation drives the handshake with raw frames: a
// future client is downgraded to the server's max, and a prehistoric
// one is refused with a typed bad-version error.
func TestE2EVersionNegotiation(t *testing.T) {
	_, srv := newTestPair(t, Config{})

	dial := func() net.Conn {
		cc, sc := net.Pipe()
		go srv.ServeConn(sc)
		t.Cleanup(func() { cc.Close() })
		return cc
	}

	// Future client downgrades.
	conn := dial()
	f, err := encodeFrame(Version1, FrameHello, &Hello{MaxVersion: MaxVersion + 9, Client: "future"})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, f); err != nil {
		t.Fatal(err)
	}
	ans, err := ReadFrame(conn)
	if err != nil || ans.Type != FrameHelloAck {
		t.Fatalf("future hello: want ack, got %+v, %v", ans, err)
	}
	ack, err := DecodeHelloAck(ans.Payload)
	if err != nil || ack.Version != MaxVersion {
		t.Fatalf("future hello: want negotiated v%d, got %+v, %v", MaxVersion, ack, err)
	}

	// Below-min client is refused with a typed error.
	conn = dial()
	f, err = encodeFrame(Version1, FrameHello, &Hello{MaxVersion: 0, Client: "ancient"})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, f); err != nil {
		t.Fatal(err)
	}
	ans, err = ReadFrame(conn)
	if err != nil || ans.Type != FrameError {
		t.Fatalf("ancient hello: want error frame, got %+v, %v", ans, err)
	}
	if we := DecodeWireError(ans.Payload); we.Code != CodeBadVersion {
		t.Fatalf("ancient hello: want bad-version, got %+v", we)
	}

	// A frame with an unknown version byte gets a typed error too.
	conn = dial()
	raw := AppendFrame(nil, Frame{Version: Version1, Type: FrameHello, Payload: []byte(`{"max_version":1}`)})
	raw[0] = 0x7f
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	ans, err = ReadFrame(conn)
	if err != nil || ans.Type != FrameError {
		t.Fatalf("bad version byte: want error frame, got %+v, %v", ans, err)
	}
	if we := DecodeWireError(ans.Payload); we.Code != CodeBadVersion {
		t.Fatalf("bad version byte: want bad-version, got %+v", we)
	}
}

// isCode reports whether err is a *WireError with the given code.
func isCode(err error, code ErrorCode) bool {
	var we *WireError
	return errors.As(err, &we) && we.Code == code
}
