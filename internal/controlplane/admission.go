package controlplane

import (
	"fmt"
	"sync"

	"cool"
)

// Limits bound what admission accepts. Zero fields mean the default.
// Limits can be reconfigured at runtime through a ControlLimits
// request — no redeploy.
type Limits struct {
	// MaxSensors and MaxTargets cap one snapshot's size.
	MaxSensors int `json:"max_sensors,omitempty"`
	MaxTargets int `json:"max_targets,omitempty"`
	// MaxDeployments caps admitted snapshots per tenant.
	MaxDeployments int `json:"max_deployments,omitempty"`
}

// Default admission limits.
const (
	DefaultMaxSensors     = 1 << 20
	DefaultMaxTargets     = 1 << 20
	DefaultMaxDeployments = 1 << 10
)

// withDefaults fills zero fields.
func (l Limits) withDefaults() Limits {
	if l.MaxSensors <= 0 {
		l.MaxSensors = DefaultMaxSensors
	}
	if l.MaxTargets <= 0 {
		l.MaxTargets = DefaultMaxTargets
	}
	if l.MaxDeployments <= 0 {
		l.MaxDeployments = DefaultMaxDeployments
	}
	return l
}

// Admission runs the fixed control-plane composition order for a
// submitted snapshot:
//
//  1. registry   — parent lineage must resolve (provenance first);
//  2. normalizer — canonicalize + validate the spec, fingerprint it;
//  3. admission  — idempotency/conflict against the registry, resource
//     limits, engine construction, then registration.
//
// Every decision is a deterministic function of (request, registry
// state, limits): resubmitting a snapshot yields the same fingerprint
// and the same decision, and a rejection at any stage leaves no
// registry residue — registration is the final step.
type Admission struct {
	reg *Registry

	mu     sync.Mutex
	limits Limits
}

// NewAdmission builds the admission stage over a registry.
func NewAdmission(reg *Registry, limits Limits) *Admission {
	return &Admission{reg: reg, limits: limits.withDefaults()}
}

// Limits returns the current admission limits.
func (a *Admission) Limits() Limits {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limits
}

// SetLimits reconfigures the limits at runtime; zero fields keep their
// current values. Returns the effective limits.
func (a *Admission) SetLimits(l Limits) Limits {
	a.mu.Lock()
	defer a.mu.Unlock()
	if l.MaxSensors > 0 {
		a.limits.MaxSensors = l.MaxSensors
	}
	if l.MaxTargets > 0 {
		a.limits.MaxTargets = l.MaxTargets
	}
	if l.MaxDeployments > 0 {
		a.limits.MaxDeployments = l.MaxDeployments
	}
	return a.limits
}

// Admit runs the composition order on one submit request. On success
// the snapshot is registered (or was already — Resubmitted), and the
// freshly built planner is returned for the serving layer's deployment
// handle (nil when resubmitted and the caller already holds one).
func (a *Admission) Admit(tenant string, req *SubmitRequest) (*Snapshot, *cool.Planner, bool, *WireError) {
	// Stage 1 — registry: provenance must resolve before anything else.
	if req.Parent != "" {
		if _, ok := a.reg.Get(tenant, req.Parent); !ok {
			return nil, nil, false, &WireError{Code: CodeNotFound,
				Message: fmt.Sprintf("parent snapshot %q not registered for tenant", req.Parent)}
		}
	}

	// Stage 2 — normalizer/validator: canonical spec and identity.
	spec, err := Normalize(req.Spec)
	if err != nil {
		return nil, nil, false, &WireError{Code: CodeRejected, Message: err.Error()}
	}
	fp, err := Fingerprint(spec)
	if err != nil {
		return nil, nil, false, &WireError{Code: CodeInternal, Message: err.Error()}
	}

	// Stage 3 — admission: idempotency, limits, construction, register.
	if existing, ok := a.reg.Get(tenant, fp); ok {
		if existing.Parent != req.Parent {
			return nil, nil, false, &WireError{Code: CodeConflict,
				Message: fmt.Sprintf("snapshot %s already registered with parent %q", fp, existing.Parent)}
		}
		return existing, nil, true, nil
	}
	limits := a.Limits()
	if n := len(spec.Sensors); n > limits.MaxSensors {
		return nil, nil, false, &WireError{Code: CodeRejected,
			Message: fmt.Sprintf("%d sensors exceeds limit %d", n, limits.MaxSensors)}
	}
	if m := len(spec.Targets); m > limits.MaxTargets {
		return nil, nil, false, &WireError{Code: CodeRejected,
			Message: fmt.Sprintf("%d targets exceeds limit %d", m, limits.MaxTargets)}
	}
	if c := a.reg.Count(tenant); c >= limits.MaxDeployments {
		return nil, nil, false, &WireError{Code: CodeRejected,
			Message: fmt.Sprintf("tenant at deployment limit %d", limits.MaxDeployments)}
	}
	planner, err := BuildPlanner(spec)
	if err != nil {
		return nil, nil, false, &WireError{Code: CodeRejected, Message: err.Error()}
	}
	snap := &Snapshot{Tenant: tenant, Name: req.Name, Fingerprint: fp, Parent: req.Parent, Spec: spec}
	registered, raced := a.reg.register(snap)
	return registered, planner, raced, nil
}
