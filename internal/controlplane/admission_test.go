package controlplane

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func admitSpec() DeploymentSpec {
	return testSpec(20, 12, 3, 5)
}

// TestAdmissionDeterministic submits the same snapshot twice: same
// fingerprint, same decision, same registry sequence number — the
// second submit is an idempotent resubmission, not a new snapshot.
func TestAdmissionDeterministic(t *testing.T) {
	adm := NewAdmission(NewRegistry(), Limits{})
	req := &SubmitRequest{Name: "field", Spec: admitSpec()}

	first, planner, resub, werr := adm.Admit("acme", req)
	if werr != nil {
		t.Fatalf("first admit: %v", werr)
	}
	if planner == nil || resub {
		t.Fatalf("first admit: planner=%v resubmitted=%v", planner, resub)
	}
	second, _, resub, werr := adm.Admit("acme", req)
	if werr != nil {
		t.Fatalf("second admit: %v", werr)
	}
	if !resub {
		t.Fatal("second admit of identical spec: want resubmitted=true")
	}
	if second.Fingerprint != first.Fingerprint || second.Seq != first.Seq {
		t.Fatalf("resubmit changed identity: first (%s, seq %d), second (%s, seq %d)",
			first.Fingerprint, first.Seq, second.Fingerprint, second.Seq)
	}
}

// TestAdmissionConcurrentTenants races the same snapshot in from two
// tenants (and many goroutines per tenant): every admit of the same
// spec must yield the same fingerprint, tenants stay fully isolated,
// and each tenant ends up with exactly one registry entry.
func TestAdmissionConcurrentTenants(t *testing.T) {
	reg := NewRegistry()
	adm := NewAdmission(reg, Limits{})
	tenants := []string{"acme", "globex"}
	const perTenant = 8

	fps := make(chan string, len(tenants)*perTenant)
	var wg sync.WaitGroup
	for _, tenant := range tenants {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				snap, _, _, werr := adm.Admit(tenant, &SubmitRequest{Spec: admitSpec()})
				if werr != nil {
					t.Errorf("%s: %v", tenant, werr)
					return
				}
				fps <- snap.Fingerprint
			}(tenant)
		}
	}
	wg.Wait()
	close(fps)

	want := ""
	for fp := range fps {
		if want == "" {
			want = fp
		} else if fp != want {
			t.Fatalf("fingerprint nondeterminism under concurrency: %s vs %s", fp, want)
		}
	}
	for _, tenant := range tenants {
		if n := reg.Count(tenant); n != 1 {
			t.Fatalf("%s: %d registry entries after racing identical submits, want 1", tenant, n)
		}
		if _, ok := reg.Get(tenant, want); !ok {
			t.Fatalf("%s: snapshot %s missing from registry", tenant, want)
		}
	}
	// Isolation: neither tenant sees a foreign tenant's snapshots.
	if _, ok := reg.Get("initech", want); ok {
		t.Fatal("tenant isolation broken: unknown tenant resolves a snapshot")
	}
}

// TestAdmissionRejectionNoResidue proves rejected submissions leave
// no trace: the registry stays empty, sequence numbers are not burned
// in a way that perturbs later admissions, and a subsequent valid
// submit of the same name works normally.
func TestAdmissionRejectionNoResidue(t *testing.T) {
	reg := NewRegistry()
	adm := NewAdmission(reg, Limits{MaxSensors: 8})

	bad := admitSpec() // 20 sensors > limit of 8
	if _, _, _, werr := adm.Admit("acme", &SubmitRequest{Name: "field", Spec: bad}); werr == nil || werr.Code != CodeRejected {
		t.Fatalf("over-limit spec: want rejected, got %v", werr)
	}
	invalid := admitSpec()
	invalid.Sensors[3].Range = -1
	if _, _, _, werr := adm.Admit("acme", &SubmitRequest{Spec: invalid}); werr == nil || werr.Code != CodeRejected {
		t.Fatalf("invalid spec: want rejected, got %v", werr)
	}
	orphan := testSpec(4, 3, 3, 8)
	if _, _, _, werr := adm.Admit("acme", &SubmitRequest{Parent: "no-such-parent", Spec: orphan}); werr == nil || werr.Code != CodeNotFound {
		t.Fatalf("unknown parent: want not-found, got %v", werr)
	}

	if n := reg.Count("acme"); n != 0 {
		t.Fatalf("rejections left %d registry entries, want 0", n)
	}
	if got := reg.List("acme"); len(got) != 0 {
		t.Fatalf("rejections visible in List: %v", got)
	}

	good := testSpec(5, 3, 3, 8)
	snap, _, _, werr := adm.Admit("acme", &SubmitRequest{Name: "field", Spec: good})
	if werr != nil {
		t.Fatalf("valid submit after rejections: %v", werr)
	}
	if n := reg.Count("acme"); n != 1 || snap.Seq == 0 {
		t.Fatalf("post-rejection admit: count=%d seq=%d", n, snap.Seq)
	}
}

// TestAdmissionParentConflict pins the lineage rule: resubmitting an
// identical spec under a different parent is a deterministic conflict,
// not a silent lineage rewrite.
func TestAdmissionParentConflict(t *testing.T) {
	adm := NewAdmission(NewRegistry(), Limits{})
	root, _, _, werr := adm.Admit("acme", &SubmitRequest{Name: "root", Spec: testSpec(6, 4, 3, 2)})
	if werr != nil {
		t.Fatal(werr)
	}
	child := testSpec(8, 4, 3, 3)
	if _, _, _, werr := adm.Admit("acme", &SubmitRequest{Name: "child", Parent: root.Fingerprint, Spec: child}); werr != nil {
		t.Fatal(werr)
	}
	if _, _, _, werr := adm.Admit("acme", &SubmitRequest{Name: "child", Spec: child}); werr == nil || werr.Code != CodeConflict {
		t.Fatalf("same spec, different parent: want conflict, got %v", werr)
	}
}

// TestFingerprintCanonicalization checks that the fingerprint is over
// the normalized spec: equivalent inputs (defaulted utility, default
// weight spelled out, ρ canonicalized through the period grid) hash
// identically, and any semantic change hashes differently.
func TestFingerprintCanonicalization(t *testing.T) {
	base := admitSpec()

	variant := admitSpec()
	variant.Utility = UtilityTargets // explicit spelling of the default
	for i := range variant.Targets {
		if variant.Targets[i].Weight == 0 {
			variant.Targets[i].Weight = 1 // explicit default weight
		}
	}

	fp := func(s DeploymentSpec) string {
		norm, err := Normalize(s)
		if err != nil {
			t.Fatal(err)
		}
		h, err := Fingerprint(norm)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	fpBase, fpVariant := fp(base), fp(variant)
	if fpBase != fpVariant {
		t.Fatalf("equivalent specs fingerprint differently: %s vs %s", fpBase, fpVariant)
	}

	changed := admitSpec()
	changed.Sensors[0].X += 0.5
	fpChanged := fp(changed)
	if fpChanged == fpBase {
		t.Fatal("semantically different specs share a fingerprint")
	}
}

// TestNormalizeRejections tables the validator: every malformed spec
// is refused with a message naming the offending field.
func TestNormalizeRejections(t *testing.T) {
	mk := func(mut func(*DeploymentSpec)) DeploymentSpec {
		s := testSpec(5, 3, 3, 4)
		mut(&s)
		return s
	}
	cases := []struct {
		name string
		spec DeploymentSpec
		want string
	}{
		{"bad rho", mk(func(s *DeploymentSpec) { s.Rho = 2.5 }), "rho"},
		{"zero rho", mk(func(s *DeploymentSpec) { s.Rho = 0 }), "rho"},
		{"no sensors", mk(func(s *DeploymentSpec) { s.Sensors = nil }), "sensor"},
		{"no targets", mk(func(s *DeploymentSpec) { s.Targets = nil }), "target"},
		{"nan coord", mk(func(s *DeploymentSpec) { s.Sensors[0].X = nan() }), "sensor"},
		{"zero range", mk(func(s *DeploymentSpec) { s.Sensors[1].Range = 0 }), "range"},
		{"negative weight", mk(func(s *DeploymentSpec) { s.Targets[0].Weight = -2 }), "weight"},
		{"unknown utility", mk(func(s *DeploymentSpec) { s.Utility = "psychic" }), "utility"},
		{"detect prob on targets", mk(func(s *DeploymentSpec) { s.DetectProb = 0.5 }), "detect_prob"},
		{"detect prob out of range", mk(func(s *DeploymentSpec) {
			s.Utility = UtilityDetection
			s.DetectProb = 1.5
		}), "detect_prob"},
	}
	for _, c := range cases {
		if _, err := Normalize(c.spec); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %q", c.name, err, c.want)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

// TestLimitsReconfigure pins runtime admission reconfiguration: a
// tightened limit applies to the next submit without restarting, and
// zero-valued fields keep their current setting.
func TestLimitsReconfigure(t *testing.T) {
	adm := NewAdmission(NewRegistry(), Limits{})
	if _, _, _, werr := adm.Admit("acme", &SubmitRequest{Spec: admitSpec()}); werr != nil {
		t.Fatal(werr)
	}
	got := adm.SetLimits(Limits{MaxSensors: 4})
	if got.MaxSensors != 4 || got.MaxTargets != DefaultMaxTargets {
		t.Fatalf("partial reconfigure: %+v", got)
	}
	other := testSpec(10, 5, 3, 77)
	if _, _, _, werr := adm.Admit("acme", &SubmitRequest{Spec: other}); werr == nil || werr.Code != CodeRejected {
		t.Fatalf("post-tighten submit: want rejected, got %v", werr)
	}
	// The tightening is not retroactive: the admitted snapshot stays.
	if n := adm.reg.Count("acme"); n != 1 {
		t.Fatalf("registry count after tighten: %d", n)
	}
}

// TestDeploymentCap fills a tenant to its deployment cap and checks
// the cap is per tenant, not global.
func TestDeploymentCap(t *testing.T) {
	adm := NewAdmission(NewRegistry(), Limits{MaxDeployments: 2})
	for i := 0; i < 2; i++ {
		if _, _, _, werr := adm.Admit("acme", &SubmitRequest{Spec: testSpec(5, 3, 3, uint64(i))}); werr != nil {
			t.Fatalf("submit %d: %v", i, werr)
		}
	}
	if _, _, _, werr := adm.Admit("acme", &SubmitRequest{Spec: testSpec(5, 3, 3, 99)}); werr == nil || werr.Code != CodeRejected {
		t.Fatalf("over cap: want rejected, got %v", werr)
	}
	if _, _, _, werr := adm.Admit("globex", &SubmitRequest{Spec: testSpec(5, 3, 3, 99)}); werr != nil {
		t.Fatalf("other tenant blocked by foreign cap: %v", werr)
	}
}

// TestRegistryListOrder pins List ordering: snapshots come back in
// admission order (ascending Seq), so provenance reads as a timeline.
func TestRegistryListOrder(t *testing.T) {
	adm := NewAdmission(NewRegistry(), Limits{})
	var parent string
	for i := 0; i < 4; i++ {
		snap, _, _, werr := adm.Admit("acme", &SubmitRequest{
			Name:   fmt.Sprintf("v%d", i),
			Parent: parent,
			Spec:   testSpec(5+i, 3, 3, uint64(100+i)),
		})
		if werr != nil {
			t.Fatal(werr)
		}
		parent = snap.Fingerprint
	}
	list := adm.reg.List("acme")
	if len(list) != 4 {
		t.Fatalf("list length %d, want 4", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].Seq <= list[i-1].Seq {
			t.Fatalf("list not in admission order: %+v", list)
		}
		if list[i].Parent != list[i-1].Fingerprint {
			t.Fatalf("lineage broken at %d: %+v", i, list)
		}
	}
}
