package controlplane

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// Client speaks the wire protocol to a coold server. Methods are safe
// for concurrent use; requests on one client are serialized (the
// protocol is strict request/response per connection — open more
// clients for pipelining).
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	version byte
	server  string
}

// Dial connects to a coold server over TCP and performs the handshake.
func Dial(addr, clientName string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, clientName)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the Hello handshake over an existing connection
// (e.g. one end of a net.Pipe for in-process serving) and returns the
// session client.
func NewClient(conn net.Conn, clientName string) (*Client, error) {
	c := &Client{conn: conn, r: bufio.NewReader(conn)}
	hello, err := encodeFrame(Version1, FrameHello, &Hello{MaxVersion: MaxVersion, Client: clientName})
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, hello); err != nil {
		return nil, err
	}
	f, err := ReadFrame(c.r)
	if err != nil {
		return nil, fmt.Errorf("controlplane: handshake: %w", err)
	}
	switch f.Type {
	case FrameHelloAck:
		ack, err := DecodeHelloAck(f.Payload)
		if err != nil {
			return nil, err
		}
		c.version = ack.Version
		c.server = ack.Server
		return c, nil
	case FrameError:
		return nil, DecodeWireError(f.Payload)
	default:
		return nil, fmt.Errorf("%w: handshake answered with frame type %d", ErrBadFrameType, f.Type)
	}
}

// Version returns the negotiated protocol version.
func (c *Client) Version() byte { return c.version }

// Server returns the server's self-identification from the handshake.
func (c *Client) Server() string { return c.server }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the answer; FrameError
// answers surface as *WireError.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, err := encodeFrame(c.version, FrameRequest, req)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(c.conn, f); err != nil {
		return nil, err
	}
	ans, err := ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	switch ans.Type {
	case FrameResponse:
		return DecodeResponse(ans.Payload)
	case FrameError:
		return nil, DecodeWireError(ans.Payload)
	default:
		return nil, fmt.Errorf("%w: answered with frame type %d", ErrBadFrameType, ans.Type)
	}
}

// Submit offers a deployment snapshot for admission.
func (c *Client) Submit(tenant string, req SubmitRequest) (*SubmitResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpSubmit, Tenant: tenant, Submit: &req})
	if err != nil {
		return nil, err
	}
	if resp.Submit == nil {
		return nil, fmt.Errorf("controlplane: submit answered without body")
	}
	return resp.Submit, nil
}

// Plan computes (or returns the committed) schedule of a snapshot.
func (c *Client) Plan(tenant string, req PlanRequest) (*PlanResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpPlan, Tenant: tenant, Plan: &req})
	if err != nil {
		return nil, err
	}
	if resp.Plan == nil {
		return nil, fmt.Errorf("controlplane: plan answered without body")
	}
	return resp.Plan, nil
}

// Replan applies one perturbation through the live session.
func (c *Client) Replan(tenant string, req ReplanRequest) (*ReplanResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpReplan, Tenant: tenant, Replan: &req})
	if err != nil {
		return nil, err
	}
	if resp.Replan == nil {
		return nil, fmt.Errorf("controlplane: replan answered without body")
	}
	return resp.Replan, nil
}

// Query reads deployment state without mutating it.
func (c *Client) Query(tenant string, req QueryRequest) (*QueryResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpQuery, Tenant: tenant, Query: &req})
	if err != nil {
		return nil, err
	}
	if resp.Query == nil {
		return nil, fmt.Errorf("controlplane: query answered without body")
	}
	return resp.Query, nil
}

// List enumerates the tenant's snapshots in admission order.
func (c *Client) List(tenant string) (*ListResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpList, Tenant: tenant, List: &ListRequest{}})
	if err != nil {
		return nil, err
	}
	if resp.List == nil {
		return nil, fmt.Errorf("controlplane: list answered without body")
	}
	return resp.List, nil
}

// Control changes serving state (suspend/resume/reset/limits) without
// redeploy.
func (c *Client) Control(tenant string, req ControlRequest) (*ControlResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpControl, Tenant: tenant, Control: &req})
	if err != nil {
		return nil, err
	}
	if resp.Control == nil {
		return nil, fmt.Errorf("controlplane: control answered without body")
	}
	return resp.Control, nil
}

// Watcher is a live subscription to one deployment's push stream.
// While a watcher is open its connection is dedicated to the stream:
// calling other client methods on the same client interleaves requests
// into the push stream and is a protocol error. Use a second client
// for concurrent request traffic.
type Watcher struct {
	c      *Client
	tenant string
	// Fingerprint identifies the watched deployment.
	Fingerprint string
	// Events is the deployment's push-event counter at subscribe time;
	// the first event from Next has Seq == Events+1.
	Events uint64
}

// Watch subscribes to a deployment's schedule pushes: one WatchEvent
// per successful plan/replan until Close or disconnect.
func (c *Client) Watch(tenant, fingerprint string) (*Watcher, error) {
	resp, err := c.roundTrip(&Request{Op: OpWatch, Tenant: tenant,
		Watch: &WatchRequest{Fingerprint: fingerprint, Op: WatchSubscribe}})
	if err != nil {
		return nil, err
	}
	if resp.Watch == nil {
		return nil, fmt.Errorf("controlplane: watch answered without body")
	}
	if !resp.Watch.Subscribed {
		return nil, fmt.Errorf("controlplane: watch subscribe not acknowledged")
	}
	return &Watcher{c: c, tenant: tenant, Fingerprint: fingerprint, Events: resp.Watch.Events}, nil
}

// Next blocks for the deployment's next pushed event. It returns the
// transport error (io.EOF on clean close) when the stream ends.
func (w *Watcher) Next() (*WatchEvent, error) {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	f, err := ReadFrame(w.c.r)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case FramePush:
		return DecodeWatchEvent(f.Payload)
	case FrameError:
		return nil, DecodeWireError(f.Payload)
	default:
		return nil, fmt.Errorf("%w: push stream carried frame type %d", ErrBadFrameType, f.Type)
	}
}

// Close unsubscribes and returns the connection to request/response
// use, draining any pushes already in flight (the server removes the
// subscription before answering, so the unsubscribe response is the
// last stream frame).
func (w *Watcher) Close() error {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	f, err := encodeFrame(w.c.version, FrameRequest, &Request{Op: OpWatch, Tenant: w.tenant,
		Watch: &WatchRequest{Fingerprint: w.Fingerprint, Op: WatchUnsubscribe}})
	if err != nil {
		return err
	}
	if err := WriteFrame(w.c.conn, f); err != nil {
		return err
	}
	for {
		ans, err := ReadFrame(w.c.r)
		if err != nil {
			return err
		}
		switch ans.Type {
		case FramePush:
			continue // in flight before the unsubscribe was processed
		case FrameResponse:
			resp, err := DecodeResponse(ans.Payload)
			if err != nil {
				return err
			}
			if resp.Watch == nil {
				return fmt.Errorf("controlplane: unsubscribe answered without body")
			}
			return nil
		case FrameError:
			return DecodeWireError(ans.Payload)
		default:
			return fmt.Errorf("%w: unsubscribe answered with frame type %d", ErrBadFrameType, ans.Type)
		}
	}
}
