package controlplane

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// Client speaks the wire protocol to a coold server. Methods are safe
// for concurrent use; requests on one client are serialized (the
// protocol is strict request/response per connection — open more
// clients for pipelining).
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	r       *bufio.Reader
	version byte
	server  string
}

// Dial connects to a coold server over TCP and performs the handshake.
func Dial(addr, clientName string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, clientName)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient performs the Hello handshake over an existing connection
// (e.g. one end of a net.Pipe for in-process serving) and returns the
// session client.
func NewClient(conn net.Conn, clientName string) (*Client, error) {
	c := &Client{conn: conn, r: bufio.NewReader(conn)}
	hello, err := encodeFrame(Version1, FrameHello, &Hello{MaxVersion: MaxVersion, Client: clientName})
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(conn, hello); err != nil {
		return nil, err
	}
	f, err := ReadFrame(c.r)
	if err != nil {
		return nil, fmt.Errorf("controlplane: handshake: %w", err)
	}
	switch f.Type {
	case FrameHelloAck:
		ack, err := DecodeHelloAck(f.Payload)
		if err != nil {
			return nil, err
		}
		c.version = ack.Version
		c.server = ack.Server
		return c, nil
	case FrameError:
		return nil, DecodeWireError(f.Payload)
	default:
		return nil, fmt.Errorf("%w: handshake answered with frame type %d", ErrBadFrameType, f.Type)
	}
}

// Version returns the negotiated protocol version.
func (c *Client) Version() byte { return c.version }

// Server returns the server's self-identification from the handshake.
func (c *Client) Server() string { return c.server }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and decodes the answer; FrameError
// answers surface as *WireError.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, err := encodeFrame(c.version, FrameRequest, req)
	if err != nil {
		return nil, err
	}
	if err := WriteFrame(c.conn, f); err != nil {
		return nil, err
	}
	ans, err := ReadFrame(c.r)
	if err != nil {
		return nil, err
	}
	switch ans.Type {
	case FrameResponse:
		return DecodeResponse(ans.Payload)
	case FrameError:
		return nil, DecodeWireError(ans.Payload)
	default:
		return nil, fmt.Errorf("%w: answered with frame type %d", ErrBadFrameType, ans.Type)
	}
}

// Submit offers a deployment snapshot for admission.
func (c *Client) Submit(tenant string, req SubmitRequest) (*SubmitResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpSubmit, Tenant: tenant, Submit: &req})
	if err != nil {
		return nil, err
	}
	if resp.Submit == nil {
		return nil, fmt.Errorf("controlplane: submit answered without body")
	}
	return resp.Submit, nil
}

// Plan computes (or returns the committed) schedule of a snapshot.
func (c *Client) Plan(tenant string, req PlanRequest) (*PlanResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpPlan, Tenant: tenant, Plan: &req})
	if err != nil {
		return nil, err
	}
	if resp.Plan == nil {
		return nil, fmt.Errorf("controlplane: plan answered without body")
	}
	return resp.Plan, nil
}

// Replan applies one perturbation through the live session.
func (c *Client) Replan(tenant string, req ReplanRequest) (*ReplanResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpReplan, Tenant: tenant, Replan: &req})
	if err != nil {
		return nil, err
	}
	if resp.Replan == nil {
		return nil, fmt.Errorf("controlplane: replan answered without body")
	}
	return resp.Replan, nil
}

// Query reads deployment state without mutating it.
func (c *Client) Query(tenant string, req QueryRequest) (*QueryResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpQuery, Tenant: tenant, Query: &req})
	if err != nil {
		return nil, err
	}
	if resp.Query == nil {
		return nil, fmt.Errorf("controlplane: query answered without body")
	}
	return resp.Query, nil
}

// List enumerates the tenant's snapshots in admission order.
func (c *Client) List(tenant string) (*ListResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpList, Tenant: tenant, List: &ListRequest{}})
	if err != nil {
		return nil, err
	}
	if resp.List == nil {
		return nil, fmt.Errorf("controlplane: list answered without body")
	}
	return resp.List, nil
}

// Control changes serving state (suspend/resume/reset/limits) without
// redeploy.
func (c *Client) Control(tenant string, req ControlRequest) (*ControlResponse, error) {
	resp, err := c.roundTrip(&Request{Op: OpControl, Tenant: tenant, Control: &req})
	if err != nil {
		return nil, err
	}
	if resp.Control == nil {
		return nil, fmt.Errorf("controlplane: control answered without body")
	}
	return resp.Control, nil
}
