package controlplane

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"cool"
	"cool/internal/parallel"
)

// Config tunes a Server.
type Config struct {
	// Limits are the initial admission limits (reconfigurable at
	// runtime via ControlLimits).
	Limits Limits
	// MaxJobs bounds concurrently running planning/replanning jobs
	// across all connections and tenants (<= 0 selects NumCPU, the
	// internal/parallel convention). Excess jobs queue.
	MaxJobs int
	// Name identifies the daemon build in HelloAck ("coold/1.0").
	Name string
	// Logf, when non-nil, receives one line per admission and serving
	// event.
	Logf func(format string, args ...any)
}

// Server is the planner-as-a-service daemon core: the control plane
// (registry → normalizer → admission) plus the serving data plane
// (plan/replan/query over the wire protocol). One Server hosts many
// tenants; each tenant's deployments are isolated — its own snapshots,
// its own live sessions — and every session mutation is serialized per
// deployment while distinct deployments plan concurrently, bounded by
// the MaxJobs pool.
type Server struct {
	cfg  Config
	reg  *Registry
	adm  *Admission
	jobs chan struct{}

	mu     sync.Mutex
	deps   map[depKey]*deployment
	conns  map[net.Conn]struct{}
	ln     net.Listener
	closed bool
	store  *Store

	// watchMu guards the watch subscriptions. Lock order: d.mu may be
	// held when taking watchMu (subscribe and push both do), never the
	// reverse.
	watchMu  sync.Mutex
	watchers map[depKey]map[*connState]struct{}
}

type depKey struct{ tenant, fingerprint string }

// deployment is one tenant's live serving state for a snapshot: the
// planner built at admission and, once plan/replan traffic arrives,
// the incremental session. Its mutex serializes session mutation.
type deployment struct {
	mu        sync.Mutex
	snap      *Snapshot
	planner   *cool.Planner
	inc       *cool.Incremental
	suspended bool
	// objective is the last-planned objective ("" until the first
	// plan/session establishes one); surfaced by query/list.
	objective string
	// events counts successful plan/replan events; pushed WatchEvents
	// carry it as their per-deployment Seq.
	events uint64
}

// connState is one live connection's write half: pushes and responses
// share the socket, so every frame write is serialized by its mutex.
type connState struct {
	conn    net.Conn
	version byte

	mu sync.Mutex
	// subs tracks the connection's subscriptions for disconnect
	// cleanup; guarded by Server.watchMu, not cs.mu.
	subs map[depKey]struct{}
}

// writeFrame writes one frame, serialized against concurrent pushes.
func (cs *connState) writeFrame(f Frame) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return WriteFrame(cs.conn, f)
}

// NewServer builds a server with the given config.
func NewServer(cfg Config) *Server {
	reg := NewRegistry()
	if cfg.Name == "" {
		cfg.Name = "coold/" + cool.Version
	}
	return &Server{
		cfg:      cfg,
		reg:      reg,
		adm:      NewAdmission(reg, cfg.Limits),
		jobs:     make(chan struct{}, parallel.Workers(cfg.MaxJobs)),
		deps:     make(map[depKey]*deployment),
		conns:    make(map[net.Conn]struct{}),
		watchers: make(map[depKey]map[*connState]struct{}),
	}
}

// Registry exposes the snapshot registry (read-only use).
func (s *Server) Registry() *Registry { return s.reg }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts connections until the listener fails or Close is
// called (which returns nil).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("controlplane: server closed")
	}
	s.ln = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Close stops the server: the listener and every open connection are
// closed, and when a store is attached, the full state is compacted
// into a final checkpoint (the clean-shutdown flush) before the store
// is closed. In-flight requests finish against closed writes.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	st := s.store
	s.store = nil
	open := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, c := range open {
		c.Close()
	}
	if st != nil {
		if cerr := s.checkpointNow(st); cerr != nil {
			// The WAL still holds everything the checkpoint would have
			// compacted; replay recovers it.
			s.logf("close: final checkpoint: %v", cerr)
			if err == nil {
				err = cerr
			}
		}
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// getStore returns the attached store (nil when serving in-memory).
func (s *Server) getStore() *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// ServeConn serves one connection: the Hello handshake, then a
// request/response loop. It is exported so in-process harnesses can
// serve a net.Pipe end directly. The connection is closed on return.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	if !s.track(conn) {
		return
	}
	defer s.untrack(conn)
	r := bufio.NewReader(conn)
	cs := &connState{conn: conn, version: Version1}
	defer s.dropWatcher(cs)

	writeErr := func(version byte, code ErrorCode, msg string) {
		f, err := encodeFrame(version, FrameError, &WireError{Code: code, Message: msg})
		if err == nil {
			cs.writeFrame(f) // best effort; the peer may be gone
		}
	}

	// Handshake.
	first, err := ReadFrame(r)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			writeErr(Version1, frameErrCode(err), err.Error())
		}
		return
	}
	if first.Type != FrameHello {
		writeErr(Version1, CodeBadFrame, fmt.Sprintf("expected hello, got frame type %d", first.Type))
		return
	}
	hello, err := DecodeHello(first.Payload)
	if err != nil {
		writeErr(Version1, CodeBadFrame, err.Error())
		return
	}
	version, err := NegotiateVersion(hello.MaxVersion)
	if err != nil {
		writeErr(Version1, CodeBadVersion, err.Error())
		return
	}
	cs.version = version
	ack, err := encodeFrame(version, FrameHelloAck, &HelloAck{Version: version, Server: s.cfg.Name})
	if err != nil || cs.writeFrame(ack) != nil {
		return
	}

	// Request loop.
	for {
		f, err := ReadFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				writeErr(version, frameErrCode(err), err.Error())
			}
			return
		}
		if f.Type != FrameRequest {
			writeErr(version, CodeBadFrame, fmt.Sprintf("expected request, got frame type %d", f.Type))
			return
		}
		req, err := DecodeRequest(f.Payload)
		if err != nil {
			// The framing is intact — answer and keep the connection.
			writeErr(version, CodeBadRequest, err.Error())
			continue
		}
		resp, werr := s.handle(req, cs)
		var out Frame
		if werr != nil {
			out, err = encodeFrame(version, FrameError, werr)
		} else {
			out, err = encodeFrame(version, FrameResponse, resp)
		}
		if err != nil {
			writeErr(version, CodeInternal, err.Error())
			continue
		}
		if err := cs.writeFrame(out); err != nil {
			return
		}
	}
}

// frameErrCode maps a wire decoding error to its typed code.
func frameErrCode(err error) ErrorCode {
	if errors.Is(err, ErrBadVersion) {
		return CodeBadVersion
	}
	return CodeBadFrame
}

// handle dispatches one request. All engine work happens here, bounded
// by the jobs pool; the connection loop stays free of planning cost.
// The connState is the requester's write half — only OpWatch binds to
// it (subscriptions are per connection).
func (s *Server) handle(req *Request, cs *connState) (*Response, *WireError) {
	switch req.Op {
	case OpSubmit:
		return s.handleSubmit(req.Tenant, req.Submit)
	case OpPlan:
		return s.handlePlan(req.Tenant, req.Plan)
	case OpReplan:
		return s.handleReplan(req.Tenant, req.Replan)
	case OpQuery:
		return s.handleQuery(req.Tenant, req.Query)
	case OpList:
		return s.handleList(req.Tenant)
	case OpControl:
		return s.handleControl(req.Tenant, req.Control)
	case OpWatch:
		return s.handleWatch(req.Tenant, req.Watch, cs)
	}
	return nil, &WireError{Code: CodeBadRequest, Message: fmt.Sprintf("unknown op %q", req.Op)}
}

// handleList enumerates the tenant's snapshots and decorates each with
// its deployment's last-planned objective (empty until a plan
// establishes one, keeping pre-objective encodings byte-identical).
func (s *Server) handleList(tenant string) (*Response, *WireError) {
	snaps := s.reg.List(tenant)
	// Collect the live handles under s.mu, then read each objective
	// under its own d.mu (lock order: s.mu and d.mu never nest here).
	deps := make([]*deployment, len(snaps))
	s.mu.Lock()
	for i := range snaps {
		deps[i] = s.deps[depKey{tenant, snaps[i].Fingerprint}]
	}
	s.mu.Unlock()
	for i, d := range deps {
		if d == nil {
			continue
		}
		d.mu.Lock()
		snaps[i].Objective = d.objective
		d.mu.Unlock()
	}
	return &Response{Op: OpList, List: &ListResponse{Snapshots: snaps}}, nil
}

func (s *Server) handleSubmit(tenant string, sub *SubmitRequest) (*Response, *WireError) {
	snap, planner, resubmitted, werr := s.adm.Admit(tenant, sub)
	if werr != nil {
		s.logf("submit tenant=%s rejected: %s: %s", tenant, werr.Code, werr.Message)
		return nil, werr
	}
	if !resubmitted {
		if st := s.getStore(); st != nil {
			// Durability before acknowledgment: the admission is answered
			// only after the event is logged and synced. On a storage
			// failure the registration is rolled back, so memory never
			// claims what the WAL does not hold and a restart cannot
			// diverge from what clients were told.
			err := st.AppendSubmit(SubmitRecord{
				Tenant:      tenant,
				Name:        snap.Name,
				Parent:      snap.Parent,
				Fingerprint: snap.Fingerprint,
				Seq:         snap.Seq,
				Spec:        snap.Spec,
			})
			if err != nil {
				s.reg.unregister(tenant, snap.Fingerprint)
				s.logf("submit tenant=%s fp=%.12s storage failure: %v", tenant, snap.Fingerprint, err)
				return nil, &WireError{Code: CodeStorage, Message: err.Error()}
			}
			if st.ShouldCheckpoint() {
				if err := s.checkpointNow(st); err != nil {
					// Non-fatal: the WAL still holds every event the
					// checkpoint would have compacted.
					s.logf("checkpoint: %v", err)
				}
			}
		}
	}
	if planner != nil {
		// Install the serving handle unless a concurrent identical
		// submit already did.
		key := depKey{tenant, snap.Fingerprint}
		s.mu.Lock()
		if _, ok := s.deps[key]; !ok {
			s.deps[key] = &deployment{snap: snap, planner: planner}
		}
		s.mu.Unlock()
	}
	s.logf("submit tenant=%s fp=%.12s name=%q sensors=%d targets=%d seq=%d resubmitted=%v",
		tenant, snap.Fingerprint, snap.Name, len(snap.Spec.Sensors), len(snap.Spec.Targets), snap.Seq, resubmitted)
	return &Response{Op: OpSubmit, Submit: &SubmitResponse{
		Fingerprint: snap.Fingerprint,
		Seq:         snap.Seq,
		Resubmitted: resubmitted,
		Sensors:     len(snap.Spec.Sensors),
		Targets:     len(snap.Spec.Targets),
	}}, nil
}

// deployment resolves the serving handle for an admitted snapshot,
// building the planner lazily when the handle is missing (e.g. the
// registering connection lost the install race). Deterministic: the
// lazily built planner is the same construction admission performed.
func (s *Server) deployment(tenant, fingerprint string) (*deployment, *WireError) {
	snap, ok := s.reg.Get(tenant, fingerprint)
	if !ok {
		return nil, &WireError{Code: CodeNotFound,
			Message: fmt.Sprintf("no snapshot %q for tenant", fingerprint)}
	}
	key := depKey{tenant, fingerprint}
	s.mu.Lock()
	d, ok := s.deps[key]
	s.mu.Unlock()
	if ok {
		return d, nil
	}
	planner, err := BuildPlanner(snap.Spec)
	if err != nil {
		return nil, &WireError{Code: CodeInternal, Message: err.Error()}
	}
	s.mu.Lock()
	if existing, ok := s.deps[key]; ok {
		d = existing
	} else {
		d = &deployment{snap: snap, planner: planner}
		s.deps[key] = d
	}
	s.mu.Unlock()
	return d, nil
}

// acquireJob takes one slot of the bounded planning pool.
func (s *Server) acquireJob() func() {
	s.jobs <- struct{}{}
	return func() { <-s.jobs }
}

// ensureInc establishes the live incremental session (the initial plan
// is bit-identical to Planner.Greedy). Callers hold d.mu.
func (d *deployment) ensureInc() error {
	if d.inc != nil {
		return nil
	}
	inc, err := d.planner.Incremental()
	if err != nil {
		return err
	}
	d.inc = inc
	return nil
}

func (s *Server) handlePlan(tenant string, plan *PlanRequest) (*Response, *WireError) {
	d, werr := s.deployment(tenant, plan.Fingerprint)
	if werr != nil {
		return nil, werr
	}
	release := s.acquireJob()
	defer release()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.suspended {
		return nil, &WireError{Code: CodeSuspended, Message: "deployment suspended"}
	}
	obj, oerr := cool.ParseObjective(plan.Objective)
	if oerr != nil {
		return nil, &WireError{Code: CodeBadRequest, Message: oerr.Error()}
	}
	if obj == cool.ObjectiveLifetime {
		return s.handlePlanLifetime(tenant, plan, d)
	}
	engine := plan.Engine
	if engine == "" {
		engine = EngineIncremental
	}
	var (
		sched   *cool.Schedule
		utility float64
		err     error
	)
	switch engine {
	case EngineIncremental:
		if err = d.ensureInc(); err == nil {
			if sched, err = d.inc.Schedule(); err == nil {
				utility = d.inc.Utility()
			}
		}
	case EngineGreedy:
		if sched, err = d.planner.Greedy(); err == nil {
			utility = d.planner.PeriodUtility(sched)
		}
	case EngineLazy:
		if sched, err = d.planner.LazyGreedy(); err == nil {
			utility = d.planner.PeriodUtility(sched)
		}
	case EngineParallel:
		if sched, err = d.planner.ParallelGreedy(plan.Workers); err == nil {
			utility = d.planner.PeriodUtility(sched)
		}
	default:
		return nil, &WireError{Code: CodeBadRequest, Message: fmt.Sprintf("unknown engine %q", engine)}
	}
	if err != nil {
		return nil, &WireError{Code: CodeInternal, Message: err.Error()}
	}
	d.objective = ObjectiveUtility
	s.logf("plan tenant=%s fp=%.12s engine=%s utility=%g", tenant, plan.Fingerprint, engine, utility)
	resp := &PlanResponse{
		Engine:   engine,
		Schedule: sched,
		Utility:  utility,
		Mode:     sched.Mode().String(),
		Slots:    sched.Period(),
	}
	s.pushEvent(depKey{tenant, plan.Fingerprint}, d, &WatchEvent{
		Fingerprint: plan.Fingerprint, Kind: WatchEventPlan, Plan: resp,
	})
	return &Response{Op: OpPlan, Plan: resp}, nil
}

// handlePlanLifetime serves the lifetime objective through the same
// engine seam: the engine name maps to a lifetime algorithm and the
// deployment's charging ratio supplies the default recharge rate
// (1/ρ per rest slot) and horizon. Callers hold d.mu.
func (s *Server) handlePlanLifetime(tenant string, plan *PlanRequest, d *deployment) (*Response, *WireError) {
	if d.snap.Spec.Utility == UtilityDetection {
		return nil, &WireError{Code: CodeBadRequest,
			Message: "lifetime objective requires a coverage utility (detection deployments have no binary coverage)"}
	}
	var alg cool.Algorithm
	switch plan.Engine {
	case "", EngineHEF:
		alg = cool.AlgorithmHEF
	case EngineStripCover:
		alg = cool.AlgorithmStripCover
	case EngineLifetimeExact:
		alg = cool.AlgorithmLifetimeExact
	default:
		return nil, &WireError{Code: CodeBadRequest,
			Message: fmt.Sprintf("engine %q does not plan the lifetime objective", plan.Engine)}
	}
	res, err := d.planner.Plan(cool.PlanRequest{Objective: cool.ObjectiveLifetime, Algorithm: alg})
	if err != nil {
		return nil, &WireError{Code: CodeInternal, Message: err.Error()}
	}
	lr := res.Lifetime
	slots := make([][]int, lr.Schedule.Slots())
	for t := range slots {
		slots[t] = append([]int{}, lr.Schedule.ActiveAt(t)...)
	}
	d.objective = ObjectiveLifetime
	s.logf("plan tenant=%s fp=%.12s engine=%s objective=lifetime lifetime=%d",
		tenant, plan.Fingerprint, string(res.Algorithm), lr.Lifetime)
	resp := &PlanResponse{
		Engine:    string(res.Algorithm),
		Objective: ObjectiveLifetime,
		Lifetime: &LifetimePlanInfo{
			Lifetime:    lr.Lifetime,
			Horizon:     lr.Horizon,
			Groups:      lr.Groups,
			ActiveSlots: slots,
		},
	}
	s.pushEvent(depKey{tenant, plan.Fingerprint}, d, &WatchEvent{
		Fingerprint: plan.Fingerprint, Kind: WatchEventPlan, Plan: resp,
	})
	return &Response{Op: OpPlan, Plan: resp}, nil
}

func (s *Server) handleReplan(tenant string, rep *ReplanRequest) (*Response, *WireError) {
	d, werr := s.deployment(tenant, rep.Fingerprint)
	if werr != nil {
		return nil, werr
	}
	release := s.acquireJob()
	defer release()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.suspended {
		return nil, &WireError{Code: CodeSuspended, Message: "deployment suspended"}
	}
	if err := d.ensureInc(); err != nil {
		return nil, &WireError{Code: CodeInternal, Message: err.Error()}
	}
	d.objective = ObjectiveUtility
	var (
		st  cool.RepairStats
		err error
	)
	switch rep.Op {
	case ReplanKill:
		st, err = d.inc.KillSensors(rep.IDs)
	case ReplanDeploy:
		st, err = d.inc.DeploySensors(rep.IDs)
	case ReplanDrift:
		st, err = d.inc.UpdateRho(rep.Rho)
	default:
		return nil, &WireError{Code: CodeBadRequest, Message: fmt.Sprintf("unknown replan op %q", rep.Op)}
	}
	if err != nil {
		return nil, &WireError{Code: CodeBadRequest, Message: err.Error()}
	}
	resp := &ReplanResponse{
		Changed:       st.Changed,
		Dirty:         st.Dirty,
		Rounds:        st.Rounds,
		Moves:         st.Moves,
		Full:          st.Full,
		UtilityBefore: st.UtilityBefore,
		Utility:       st.Utility,
	}
	if rep.WithGap {
		gap, err := d.inc.Gap()
		if err != nil {
			return nil, &WireError{Code: CodeInternal, Message: err.Error()}
		}
		resp.Gap = &gap
	}
	if rep.WithSchedule {
		sched, err := d.inc.Schedule()
		if err != nil {
			return nil, &WireError{Code: CodeInternal, Message: err.Error()}
		}
		resp.Schedule = sched
	}
	s.logf("replan tenant=%s fp=%.12s op=%s changed=%d dirty=%d moves=%d utility=%g",
		tenant, rep.Fingerprint, rep.Op, st.Changed, st.Dirty, st.Moves, st.Utility)
	key := depKey{tenant, rep.Fingerprint}
	if s.watcherCount(key) > 0 {
		// The push mirrors the actor's response, except it always
		// carries the repaired schedule — a watcher cannot ask later.
		push := *resp
		if push.Schedule == nil {
			sched, err := d.inc.Schedule()
			if err != nil {
				s.logf("watch tenant=%s fp=%.12s push schedule: %v", tenant, rep.Fingerprint, err)
				return &Response{Op: OpReplan, Replan: resp}, nil
			}
			push.Schedule = sched
		}
		s.pushEvent(key, d, &WatchEvent{
			Fingerprint: rep.Fingerprint, Kind: WatchEventReplan, Replan: &push,
		})
	} else {
		d.events++ // the event is numbered even when unobserved
	}
	return &Response{Op: OpReplan, Replan: resp}, nil
}

func (s *Server) handleQuery(tenant string, q *QueryRequest) (*Response, *WireError) {
	d, werr := s.deployment(tenant, q.Fingerprint)
	if werr != nil {
		return nil, werr
	}
	if q.What == QueryStatus {
		// Status works even while suspended — it is how an operator
		// sees the suspension.
		watchers := s.watcherCount(depKey{tenant, q.Fingerprint})
		d.mu.Lock()
		defer d.mu.Unlock()
		period := d.planner.Period()
		st := &StatusInfo{
			Fingerprint: d.snap.Fingerprint,
			Name:        d.snap.Name,
			Parent:      d.snap.Parent,
			Seq:         d.snap.Seq,
			Mode:        "",
			Slots:       period.Slots(),
			Rho:         period.Rho(),
			Present:     len(d.snap.Spec.Sensors),
			Suspended:   d.suspended,
			Live:        d.inc != nil,
			Objective:   d.objective,
			Watchers:    watchers,
		}
		if d.inc != nil {
			st.Mode = d.inc.Mode().String()
			st.Slots = d.inc.Period().Slots()
			st.Rho = d.inc.Period().Rho()
			st.Present = d.inc.NumPresent()
		}
		return &Response{Op: OpQuery, Query: &QueryResponse{Status: st}}, nil
	}
	release := s.acquireJob()
	defer release()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.suspended {
		return nil, &WireError{Code: CodeSuspended, Message: "deployment suspended"}
	}
	if err := d.ensureInc(); err != nil {
		return nil, &WireError{Code: CodeInternal, Message: err.Error()}
	}
	d.objective = ObjectiveUtility
	out := &QueryResponse{}
	switch q.What {
	case QuerySchedule:
		sched, err := d.inc.Schedule()
		if err != nil {
			return nil, &WireError{Code: CodeInternal, Message: err.Error()}
		}
		out.Schedule = sched
	case QueryUtility:
		u := d.inc.Utility()
		out.Utility = &u
	case QueryGap:
		gap, err := d.inc.Gap()
		if err != nil {
			return nil, &WireError{Code: CodeInternal, Message: err.Error()}
		}
		out.Gap = &gap
	default:
		return nil, &WireError{Code: CodeBadRequest, Message: fmt.Sprintf("unknown query %q", q.What)}
	}
	return &Response{Op: OpQuery, Query: out}, nil
}

func (s *Server) handleControl(tenant string, ctl *ControlRequest) (*Response, *WireError) {
	switch ctl.Op {
	case ControlLimits:
		var l Limits
		if ctl.Limits != nil {
			l = *ctl.Limits
		}
		old := s.adm.Limits()
		eff := s.adm.SetLimits(l)
		if st := s.getStore(); st != nil {
			// The record holds the effective (fully non-zero) limits, so
			// replaying it restores them exactly; on storage failure the
			// change is undone the same way.
			if err := st.AppendLimits(eff); err != nil {
				s.adm.SetLimits(old)
				s.logf("control tenant=%s limits storage failure: %v", tenant, err)
				return nil, &WireError{Code: CodeStorage, Message: err.Error()}
			}
		}
		s.logf("control tenant=%s limits=%+v", tenant, eff)
		return &Response{Op: OpControl, Control: &ControlResponse{Limits: &eff}}, nil
	case ControlSuspend, ControlResume, ControlReset:
		d, werr := s.deployment(tenant, ctl.Fingerprint)
		if werr != nil {
			return nil, werr
		}
		d.mu.Lock()
		defer d.mu.Unlock()
		switch ctl.Op {
		case ControlSuspend:
			d.suspended = true
		case ControlResume:
			d.suspended = false
		case ControlReset:
			d.inc = nil
		}
		s.logf("control tenant=%s fp=%.12s op=%s", tenant, ctl.Fingerprint, ctl.Op)
		return &Response{Op: OpControl, Control: &ControlResponse{Suspended: d.suspended}}, nil
	}
	return nil, &WireError{Code: CodeBadRequest, Message: fmt.Sprintf("unknown control op %q", ctl.Op)}
}

// handleWatch subscribes (or unsubscribes) the requesting connection
// to a deployment's push stream. Subscription state changes under d.mu
// so they serialize against pushes: the Events counter in the response
// and the Seq of the first push the subscriber sees are gap-free by
// construction.
func (s *Server) handleWatch(tenant string, w *WatchRequest, cs *connState) (*Response, *WireError) {
	d, werr := s.deployment(tenant, w.Fingerprint)
	if werr != nil {
		return nil, werr
	}
	key := depKey{tenant, w.Fingerprint}
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := &WatchResponse{Events: d.events}
	s.watchMu.Lock()
	set := s.watchers[key]
	switch w.Op {
	case WatchSubscribe:
		if set == nil {
			set = make(map[*connState]struct{})
			s.watchers[key] = set
		}
		set[cs] = struct{}{}
		if cs.subs == nil {
			cs.subs = make(map[depKey]struct{})
		}
		cs.subs[key] = struct{}{}
		resp.Subscribed = true
	case WatchUnsubscribe:
		delete(set, cs)
		delete(cs.subs, key)
	default:
		s.watchMu.Unlock()
		return nil, &WireError{Code: CodeBadRequest, Message: fmt.Sprintf("unknown watch op %q", w.Op)}
	}
	resp.Watchers = len(set)
	s.watchMu.Unlock()
	s.logf("watch tenant=%s fp=%.12s op=%s watchers=%d", tenant, w.Fingerprint, w.Op, resp.Watchers)
	return &Response{Op: OpWatch, Watch: resp}, nil
}

// watcherCount returns the deployment's subscriber count.
func (s *Server) watcherCount(key depKey) int {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	return len(s.watchers[key])
}

// dropWatcher removes a disconnecting connection from every
// subscription it holds.
func (s *Server) dropWatcher(cs *connState) {
	s.watchMu.Lock()
	for key := range cs.subs {
		delete(s.watchers[key], cs)
		if len(s.watchers[key]) == 0 {
			delete(s.watchers, key)
		}
	}
	cs.subs = nil
	s.watchMu.Unlock()
}

// pushEvent numbers one successful plan/replan event and pushes it to
// the deployment's subscribers. Callers hold d.mu, which is what makes
// per-deployment push order (and the Seq numbering) total; a write
// failure drops the watcher and closes its connection.
func (s *Server) pushEvent(key depKey, d *deployment, ev *WatchEvent) {
	d.events++
	ev.Seq = d.events
	s.watchMu.Lock()
	set := s.watchers[key]
	targets := make([]*connState, 0, len(set))
	for cs := range set {
		targets = append(targets, cs)
	}
	s.watchMu.Unlock()
	if len(targets) == 0 {
		return
	}
	f, err := encodeFrame(Version1, FramePush, ev)
	if err != nil {
		s.logf("watch fp=%.12s push encode: %v", key.fingerprint, err)
		return
	}
	for _, cs := range targets {
		f.Version = cs.version
		if err := cs.writeFrame(f); err != nil {
			// A dead or stalled watcher must not wedge the deployment.
			s.dropWatcher(cs)
			cs.conn.Close()
		}
	}
}
