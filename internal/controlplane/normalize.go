package controlplane

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"cool"
)

// Normalize canonicalizes and validates a deployment spec — the
// control plane's normalizer/validator stage. Invalid inputs are
// classified deterministically (the returned error depends only on the
// spec), and valid specs are brought to a canonical form so that
// equality of normalized specs is equality of deployments:
//
//   - Utility "" becomes UtilityTargets.
//   - Target weights 0 become 1 (the wsn.DeployConfig default).
//   - Rho is rounded to the exact ratio of its normalized period, so
//     3.0000000001 and 3 fingerprint identically.
//
// Sensor and target order is preserved — IDs are ordinal, so order is
// semantic, not presentation.
func Normalize(spec DeploymentSpec) (DeploymentSpec, error) {
	period, err := cool.PeriodFromRho(spec.Rho)
	if err != nil {
		return DeploymentSpec{}, fmt.Errorf("controlplane: spec rho: %w", err)
	}
	spec.Rho = period.Rho()

	switch spec.Utility {
	case "", UtilityTargets:
		spec.Utility = UtilityTargets
		if spec.DetectProb != 0 {
			return DeploymentSpec{}, fmt.Errorf("controlplane: detect_prob %v meaningless for %q utility", spec.DetectProb, UtilityTargets)
		}
	case UtilityDetection:
		if !(spec.DetectProb > 0 && spec.DetectProb <= 1) {
			return DeploymentSpec{}, fmt.Errorf("controlplane: detection utility needs detect_prob in (0,1], got %v", spec.DetectProb)
		}
	default:
		return DeploymentSpec{}, fmt.Errorf("controlplane: unknown utility %q", spec.Utility)
	}

	if len(spec.Sensors) == 0 {
		return DeploymentSpec{}, fmt.Errorf("controlplane: spec has no sensors")
	}
	if len(spec.Targets) == 0 {
		return DeploymentSpec{}, fmt.Errorf("controlplane: spec has no targets")
	}
	sensors := append([]SensorSpec(nil), spec.Sensors...)
	for i, s := range sensors {
		if !finite(s.X) || !finite(s.Y) {
			return DeploymentSpec{}, fmt.Errorf("controlplane: sensor %d has non-finite position (%v, %v)", i, s.X, s.Y)
		}
		if !(s.Range > 0) || !finite(s.Range) {
			return DeploymentSpec{}, fmt.Errorf("controlplane: sensor %d has invalid range %v", i, s.Range)
		}
	}
	targets := append([]TargetSpec(nil), spec.Targets...)
	for j := range targets {
		t := &targets[j]
		if !finite(t.X) || !finite(t.Y) {
			return DeploymentSpec{}, fmt.Errorf("controlplane: target %d has non-finite position (%v, %v)", j, t.X, t.Y)
		}
		if t.Weight == 0 {
			t.Weight = 1
		}
		if !(t.Weight > 0) || !finite(t.Weight) {
			return DeploymentSpec{}, fmt.Errorf("controlplane: target %d has invalid weight %v", j, t.Weight)
		}
	}
	spec.Sensors = sensors
	spec.Targets = targets
	return spec, nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Fingerprint digests a normalized spec into the snapshot identity:
// the hex SHA-256 of its canonical JSON encoding. Go's json.Marshal of
// a struct is deterministic (fixed field order, shortest round-trip
// float encoding), so equal normalized specs always digest equally.
// Provenance (name, parent) is deliberately outside the digest —
// identity is content, lineage is metadata.
func Fingerprint(spec DeploymentSpec) (string, error) {
	canonical, err := json.Marshal(spec)
	if err != nil {
		return "", fmt.Errorf("controlplane: fingerprinting spec: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:]), nil
}

// BuildPlanner materializes the engine stack for a normalized spec:
// network → utility → planner, exactly the construction a direct
// library user performs. The daemon calling this (and nothing else) is
// what makes it a transparent transport — the e2e differential harness
// holds the two paths bit-identical.
func BuildPlanner(spec DeploymentSpec) (*cool.Planner, error) {
	sensors := make([]cool.Sensor, len(spec.Sensors))
	for i, s := range spec.Sensors {
		sensors[i] = cool.Sensor{ID: i, Pos: cool.Point{X: s.X, Y: s.Y}, Range: s.Range}
	}
	targets := make([]cool.Target, len(spec.Targets))
	for j, t := range spec.Targets {
		targets[j] = cool.Target{ID: j, Pos: cool.Point{X: t.X, Y: t.Y}, Weight: t.Weight}
	}
	net, err := cool.NewNetwork(sensors, targets)
	if err != nil {
		return nil, err
	}
	var util cool.Utility
	switch spec.Utility {
	case UtilityDetection:
		util, err = cool.NewDetectionUtility(net, cool.FixedProb(spec.DetectProb))
	default:
		util, err = cool.NewTargetCountUtility(net)
	}
	if err != nil {
		return nil, err
	}
	period, err := cool.PeriodFromRho(spec.Rho)
	if err != nil {
		return nil, err
	}
	return cool.NewPlanner(util, period)
}
