package controlplane

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"testing"
)

// crashingWriter simulates a power cut mid-write: it acknowledges
// every byte handed to it but only the first limit bytes reach the
// platters. Replaying a recorded log through it at every limit yields
// the exact family of torn images a crashed daemon can leave behind.
type crashingWriter struct {
	limit int
	buf   []byte
}

func (w *crashingWriter) Write(p []byte) (int, error) {
	if room := w.limit - len(w.buf); room > 0 {
		if room > len(p) {
			room = len(p)
		}
		w.buf = append(w.buf, p[:room]...)
	}
	return len(p), nil // the kernel accepted the write; the disk did not
}

// crashImage produces the on-disk bytes after a crash at the given
// byte offset of the recorded log, generated through crashingWriter
// record by record — the same write pattern the store issues.
func crashImage(tb testing.TB, recs []WALRecord, offset int) []byte {
	tb.Helper()
	w := &crashingWriter{limit: offset}
	for _, r := range recs {
		if _, err := w.Write(appendWALRecord(nil, r)); err != nil {
			tb.Fatal(err)
		}
	}
	return w.buf
}

// stateDigest fingerprints the whole recoverable control state of a
// server: every snapshot (spec, fingerprint, seq, lineage) in global
// admission order, the admission counter, and the effective limits.
// Two servers with equal digests are bit-identical for every read path
// the daemon serves.
func stateDigest(tb testing.TB, srv *Server) string {
	tb.Helper()
	snaps, seq := srv.reg.Export()
	blob, err := json.Marshal(struct {
		Snapshots []SubmitRecord `json:"snapshots"`
		Seq       uint64         `json:"seq"`
		Limits    Limits         `json:"limits"`
	}{snaps, seq, srv.adm.Limits()})
	if err != nil {
		tb.Fatal(err)
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// crashSessionConfig is the server config under which the crash
// session is recorded AND under which every recovery attempt runs —
// replayed limits records land on top of the same baseline.
func crashSessionConfig() Config {
	return Config{Limits: Limits{MaxDeployments: 2}}
}

// recordCrashSession drives a live admission session through the wire
// against a store-backed daemon and returns the recorded WAL bytes.
// The script deliberately includes non-events that must leave no WAL
// residue: an idempotent resubmit and a rejected submit (per-tenant
// cap), plus a runtime limits change that lifts the cap mid-session.
func recordCrashSession(t *testing.T) []byte {
	t.Helper()
	dir := t.TempDir()
	st, rec, err := OpenStore(dir, StoreOptions{CheckpointEvery: 1 << 30}) // never auto-compact
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(crashSessionConfig())
	if _, err := srv.UseStore(st, rec); err != nil {
		t.Fatal(err)
	}
	cli := newClient(t, srv)

	subA, err := cli.Submit("acme", SubmitRequest{Name: "field-a", Spec: testSpec(8, 5, 3, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Submit("acme", SubmitRequest{Name: "field-b", Spec: testSpec(6, 4, 2, 2)}); err != nil {
		t.Fatal(err)
	}
	// Idempotent resubmit: admitted state unchanged, no WAL record.
	re, err := cli.Submit("acme", SubmitRequest{Name: "field-a", Spec: testSpec(8, 5, 3, 1)})
	if err != nil || !re.Resubmitted {
		t.Fatalf("resubmit: %v (resubmitted %v)", err, re)
	}
	// Rejected by the per-tenant cap: no admission, no WAL record.
	if _, err := cli.Submit("acme", SubmitRequest{Name: "field-c", Spec: testSpec(5, 3, 2, 3)}); !isCode(err, CodeRejected) {
		t.Fatalf("over-cap submit: want %s, got %v", CodeRejected, err)
	}
	// Runtime limits change IS durable.
	if _, err := cli.Control("acme", ControlRequest{Op: ControlLimits,
		Limits: &Limits{MaxDeployments: 8}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Submit("acme", SubmitRequest{Name: "field-c", Spec: testSpec(5, 3, 2, 3)}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Submit("globex", SubmitRequest{Name: "north", Spec: testSpec(7, 4, 1, 4)}); err != nil {
		t.Fatal(err)
	}
	// A child snapshot with lineage.
	if _, err := cli.Submit("acme", SubmitRequest{Name: "field-a-v2", Parent: subA.Fingerprint,
		Spec: testSpec(9, 5, 3, 5)}); err != nil {
		t.Fatal(err)
	}

	walBytes, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check: the never-crashed daemon's state equals a full replay
	// of its own log into a fresh server.
	recs, clean, torn := decodeWAL(walBytes)
	if torn != nil || clean != int64(len(walBytes)) {
		t.Fatalf("recorded log not clean: %v", torn)
	}
	fresh := NewServer(crashSessionConfig())
	if _, err := fresh.Restore(&Recovered{Records: recs}); err != nil {
		t.Fatal(err)
	}
	if got, want := stateDigest(t, fresh), stateDigest(t, srv); got != want {
		t.Fatalf("full replay diverges from the live daemon:\n got %s\nwant %s", got, want)
	}
	return walBytes
}

// TestCrashRecoveryEveryOffset is the fault-injection differential the
// issue demands: the recorded session's WAL is cut at EVERY byte
// offset; each torn image must recover — without panicking — to
// exactly the state of a daemon that durably executed the records
// whose bytes fully survive, with the damage reported as a typed torn
// tail whenever the cut is not a clean record boundary.
func TestCrashRecoveryEveryOffset(t *testing.T) {
	walBytes := recordCrashSession(t)
	recs, _, _ := decodeWAL(walBytes)
	if len(recs) < 5 {
		t.Fatalf("session recorded only %d WAL records", len(recs))
	}

	// digests[k] = state after durably executing the first k records.
	boundaries := map[int]int{0: 0}
	digests := make([]string, len(recs)+1)
	var prefix []byte
	for k := 0; k <= len(recs); k++ {
		srv := NewServer(crashSessionConfig())
		if _, err := srv.Restore(&Recovered{Records: recs[:k]}); err != nil {
			t.Fatalf("prefix %d: %v", k, err)
		}
		digests[k] = stateDigest(t, srv)
		if k < len(recs) {
			prefix = appendWALRecord(prefix, recs[k])
			boundaries[len(prefix)] = k + 1
		}
	}
	for k := 1; k <= len(recs); k++ {
		if digests[k] == digests[k-1] {
			t.Fatalf("record %d is a state no-op — the sweep would not detect losing it", k)
		}
	}

	for cut := 0; cut <= len(walBytes); cut++ {
		img := crashImage(t, recs, cut)
		got, clean, torn := decodeWAL(img)
		wantK, atBoundary := boundaries[cut]
		for off, k := range boundaries {
			if off <= cut && k > wantK {
				wantK = k
			}
		}
		if len(got) != wantK {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), wantK)
		}
		if atBoundary != (torn == nil) {
			t.Fatalf("cut %d: boundary=%v but torn=%v", cut, atBoundary, torn)
		}
		if torn != nil && (!errors.Is(torn, ErrTornTail) || torn.Offset != clean) {
			t.Fatalf("cut %d: malformed torn tail %+v (clean %d)", cut, torn, clean)
		}
		srv := NewServer(crashSessionConfig())
		if _, err := srv.Restore(&Recovered{Records: got, TornTail: torn}); err != nil {
			t.Fatalf("cut %d: recovery refused a valid clean prefix: %v", cut, err)
		}
		if d := stateDigest(t, srv); d != digests[wantK] {
			t.Fatalf("cut %d: recovered state diverges from the %d-record daemon", cut, wantK)
		}
	}
}

// TestCrashRecoveryFileBacked runs the sweep through the real store at
// sampled offsets — record boundaries, their neighbors, and a stride
// through payload bytes — asserting OpenStore truncates the torn tail
// off disk and the recovered daemon accepts new durable work whose log
// then reopens cleanly.
func TestCrashRecoveryFileBacked(t *testing.T) {
	walBytes := recordCrashSession(t)
	recs, _, _ := decodeWAL(walBytes)

	boundaries := map[int]int{0: 0}
	var prefix []byte
	for k, r := range recs {
		prefix = appendWALRecord(prefix, r)
		boundaries[len(prefix)] = k + 1
	}
	offsets := map[int]struct{}{}
	for off := range boundaries {
		for _, o := range []int{off - 1, off, off + 1} {
			if o >= 0 && o <= len(walBytes) {
				offsets[o] = struct{}{}
			}
		}
	}
	for off := 0; off <= len(walBytes); off += 97 { // stride through payloads
		offsets[off] = struct{}{}
	}

	for cut := range offsets {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(walPath(dir), crashImage(t, recs, cut), 0o644); err != nil {
				t.Fatal(err)
			}
			st, rec, err := OpenStore(dir, StoreOptions{CheckpointEvery: 1 << 30})
			if err != nil {
				t.Fatalf("OpenStore on torn image: %v", err)
			}
			wantK, atBoundary := boundaries[cut]
			for off, k := range boundaries {
				if off <= cut && k > wantK {
					wantK = k
				}
			}
			if len(rec.Records) != wantK || (atBoundary != (rec.TornTail == nil)) {
				t.Fatalf("recovered %d records (torn %v), want %d (boundary %v)",
					len(rec.Records), rec.TornTail, wantK, atBoundary)
			}
			srv := NewServer(crashSessionConfig())
			if _, err := srv.UseStore(st, rec); err != nil {
				t.Fatal(err)
			}
			// The torn tail is gone from disk: the file ends at the clean
			// prefix.
			if fi, err := os.Stat(walPath(dir)); err != nil || !boundaryAt(boundaries, fi.Size()) {
				t.Fatalf("post-open log size %d not a record boundary (%v)", fi.Size(), err)
			}
			// The recovered daemon keeps serving durably.
			cli := newClient(t, srv)
			if _, err := cli.Control("acme", ControlRequest{Op: ControlLimits,
				Limits: &Limits{MaxDeployments: 9}}); err != nil {
				t.Fatal(err)
			}
			if _, err := cli.Submit("initech", SubmitRequest{Name: "post-crash",
				Spec: testSpec(5, 3, 2, 77)}); err != nil {
				t.Fatal(err)
			}
			want := stateDigest(t, srv)
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2, rec2, err := OpenStore(dir, StoreOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer st2.Close()
			if rec2.TornTail != nil {
				t.Fatalf("log written after recovery reopened torn: %v", rec2.TornTail)
			}
			srv2 := NewServer(crashSessionConfig())
			if _, err := srv2.Restore(rec2); err != nil {
				t.Fatal(err)
			}
			if got := stateDigest(t, srv2); got != want {
				t.Fatalf("post-recovery appends not durable:\n got %s\nwant %s", got, want)
			}
		})
	}
}

func boundaryAt(boundaries map[int]int, size int64) bool {
	_, ok := boundaries[int(size)]
	return ok
}

// TestCrashRecoveryNeverAcksLostWrite closes the durability loop from
// the client's side: a submit the daemon acknowledged is never lost.
// The store is swapped for one whose log is torn immediately after the
// acknowledged record — recovery must still hold that snapshot.
func TestCrashRecoveryNeverAcksLostWrite(t *testing.T) {
	walBytes := recordCrashSession(t)
	recs, _, _ := decodeWAL(walBytes)
	// Every prefix of acknowledged records, torn one byte into the next
	// record's header, still recovers all acknowledged state.
	var prefix []byte
	for k, r := range recs {
		prefix = appendWALRecord(prefix, r)
		if k == len(recs)-1 {
			break
		}
		img := crashImage(t, recs, len(prefix)+1) // next record's first byte only
		got, _, torn := decodeWAL(img)
		if len(got) != k+1 || torn == nil {
			t.Fatalf("after record %d (+1 byte): recovered %d records, torn %v", k, len(got), torn)
		}
		srv := NewServer(crashSessionConfig())
		if _, err := srv.Restore(&Recovered{Records: got, TornTail: torn}); err != nil {
			t.Fatalf("after record %d: %v", k, err)
		}
		snaps, _ := srv.reg.Export()
		want := 0
		for i := 0; i <= k; i++ {
			if recs[i].Kind == RecordSubmit {
				want++
			}
		}
		if len(snaps) != want {
			t.Fatalf("after record %d: %d snapshots recovered, want %d", k, len(snaps), want)
		}
	}
}
