package controlplane

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
)

// This file is the durability layer of the control plane: an
// append-only, length-prefixed, CRC-guarded write-ahead log of
// admission events plus periodic compacted checkpoints. The record
// framing reuses the wire protocol's decoder discipline — a version
// byte, a typed kind byte, and a size that is validated before any
// allocation — so a torn or hostile log errors with a typed reason
// instead of panicking or admitting a half-written snapshot.
//
// Log layout (one record):
//
//	offset 0      version byte (WALVersion1)
//	offset 1      record kind byte
//	offset 2..5   payload length, big-endian uint32
//	offset 6..13  LSN, big-endian uint64 (strictly increasing)
//	offset 14..17 CRC-32C, big-endian uint32, over bytes 0..13 ++ payload
//	offset 18..   payload (JSON)
//
// Crash semantics: the only damage an append-crash can leave is a
// truncated final record (the torn tail). Recovery replays the longest
// clean prefix — every record that decodes with a valid header, a
// monotonic LSN and a matching CRC — and reports the discarded tail as
// a typed *TornTailError. A record that fails any check never reaches
// the registry, so a half-written snapshot is never admitted.
//
// Compaction: every CheckpointEvery admissions the full registry state
// is written to checkpoint.json (atomically: temp file, fsync, rename)
// and the WAL is truncated. The checkpoint records the LSN it
// compacted up to; replay skips WAL records at or below it, so a crash
// between the rename and the truncation only makes replay idempotent,
// never wrong. See DESIGN.md §5.10.

// WALVersion1 is the initial WAL record format version.
const WALVersion1 byte = 1

// RecordKind tags the payload carried by one WAL record.
type RecordKind byte

// WAL record kinds. Like wire frame types, unknown kinds are a typed
// decode error — a future format bump, not a crash.
const (
	// RecordSubmit is one durable admission event: the full normalized
	// snapshot as admitted (tenant, lineage, fingerprint, seq, spec).
	RecordSubmit RecordKind = 1
	// RecordLimits is one durable runtime limits reconfiguration (the
	// effective limits after the change).
	RecordLimits RecordKind = 2
)

// maxRecordKind is the highest kind this build understands.
const maxRecordKind = RecordLimits

// walHeaderLen is the fixed record header size: version byte, kind
// byte, uint32 length, uint64 LSN, uint32 CRC.
const walHeaderLen = 18

// MaxWALRecordBytes bounds one record's payload, validated before any
// allocation — the same discipline as MaxFrameBytes (a snapshot that
// fits a wire frame fits a WAL record).
const MaxWALRecordBytes = MaxFrameBytes

// WAL decoding errors.
var (
	// ErrWALRecord reports a structurally invalid record (bad version,
	// unknown kind, oversize length, CRC mismatch, non-monotonic LSN).
	ErrWALRecord = errors.New("controlplane: malformed WAL record")
	// ErrTornTail reports that the log ends in a partial or corrupt
	// record — the expected shape after an append-crash. Recovery keeps
	// the clean prefix; the typed error carries where and why.
	ErrTornTail = errors.New("controlplane: torn WAL tail")
)

// TornTailError is the typed torn-tail report: the byte offset of the
// first unreadable record (== the length of the clean prefix) and the
// decoder's reason. It unwraps to ErrTornTail.
type TornTailError struct {
	// Offset is the byte offset of the clean prefix's end.
	Offset int64
	// Reason is the decoder's classification of the damage.
	Reason string
}

// Error implements error.
func (e *TornTailError) Error() string {
	return fmt.Sprintf("controlplane: torn WAL tail at offset %d: %s", e.Offset, e.Reason)
}

// Unwrap makes errors.Is(err, ErrTornTail) hold.
func (e *TornTailError) Unwrap() error { return ErrTornTail }

// WALRecord is one decoded log record.
type WALRecord struct {
	// LSN is the record's log sequence number, strictly increasing
	// across the log (checkpoints compact up to an LSN; appends
	// continue past it).
	LSN uint64
	// Kind tags the payload.
	Kind RecordKind
	// Payload is the record's JSON body.
	Payload []byte
}

// SubmitRecord is the payload of a RecordSubmit: the admitted snapshot
// exactly as the registry holds it. Replay re-normalizes the spec and
// re-derives the fingerprint, so a corrupted or tampered record is a
// typed error, never a silently wrong registry.
type SubmitRecord struct {
	Tenant      string         `json:"tenant"`
	Name        string         `json:"name,omitempty"`
	Parent      string         `json:"parent,omitempty"`
	Fingerprint string         `json:"fingerprint"`
	Seq         uint64         `json:"seq"`
	Spec        DeploymentSpec `json:"spec"`
}

// LimitsRecord is the payload of a RecordLimits: the effective
// admission limits after a runtime reconfiguration.
type LimitsRecord struct {
	Limits Limits `json:"limits"`
}

// Checkpoint is the compacted full state written by the store:
// everything replay needs to rebuild the control plane without the
// log. Snapshots are in admission (Seq) order.
type Checkpoint struct {
	// FormatVersion versions the checkpoint encoding.
	FormatVersion int `json:"format_version"`
	// LSN is the last WAL record compacted into this checkpoint; replay
	// skips records at or below it.
	LSN uint64 `json:"lsn"`
	// Seq is the registry's global admission sequence counter.
	Seq uint64 `json:"seq"`
	// Limits are the effective admission limits.
	Limits Limits `json:"limits"`
	// Snapshots are every tenant's admitted snapshots in Seq order.
	Snapshots []SubmitRecord `json:"snapshots"`
}

// checkpointFormatVersion is the checkpoint encoding this build writes
// and accepts.
const checkpointFormatVersion = 1

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendWALRecord appends the encoded record to dst and returns the
// extended slice. Encoding is the byte-for-byte inverse of
// decodeWALRecord; the golden WAL corpus pins it.
func appendWALRecord(dst []byte, rec WALRecord) []byte {
	start := len(dst)
	dst = append(dst, WALVersion1, byte(rec.Kind))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(rec.Payload)))
	dst = binary.BigEndian.AppendUint64(dst, rec.LSN)
	crc := crc32.Update(0, crcTable, dst[start:start+14])
	crc = crc32.Update(crc, crcTable, rec.Payload)
	dst = binary.BigEndian.AppendUint32(dst, crc)
	return append(dst, rec.Payload...)
}

// decodeWALRecord decodes one record at data[off:]. It validates the
// version, kind, length and CRC before trusting the payload, and
// returns the offset just past the record. Errors classify the damage;
// io-style truncation and corruption both come back as ErrWALRecord
// wraps so decodeWAL can convert them to a torn-tail report.
func decodeWALRecord(data []byte, off int) (WALRecord, int, error) {
	if len(data)-off < walHeaderLen {
		return WALRecord{}, off, fmt.Errorf("%w: truncated header (%d of %d bytes)",
			ErrWALRecord, len(data)-off, walHeaderLen)
	}
	h := data[off : off+walHeaderLen]
	if h[0] != WALVersion1 {
		return WALRecord{}, off, fmt.Errorf("%w: version %d (this build speaks %d)", ErrWALRecord, h[0], WALVersion1)
	}
	kind := RecordKind(h[1])
	if kind == 0 || kind > maxRecordKind {
		return WALRecord{}, off, fmt.Errorf("%w: unknown kind %d", ErrWALRecord, h[1])
	}
	n := binary.BigEndian.Uint32(h[2:6])
	if n > MaxWALRecordBytes {
		return WALRecord{}, off, fmt.Errorf("%w: declared %d bytes exceeds MaxWALRecordBytes", ErrWALRecord, n)
	}
	if len(data)-off-walHeaderLen < int(n) {
		return WALRecord{}, off, fmt.Errorf("%w: truncated payload (%d of %d bytes)",
			ErrWALRecord, len(data)-off-walHeaderLen, n)
	}
	payload := data[off+walHeaderLen : off+walHeaderLen+int(n)]
	crc := crc32.Update(0, crcTable, h[:14])
	crc = crc32.Update(crc, crcTable, payload)
	if got := binary.BigEndian.Uint32(h[14:18]); got != crc {
		return WALRecord{}, off, fmt.Errorf("%w: CRC mismatch (stored %08x, computed %08x)", ErrWALRecord, got, crc)
	}
	rec := WALRecord{
		LSN:  binary.BigEndian.Uint64(h[6:14]),
		Kind: kind,
	}
	if n > 0 {
		rec.Payload = append([]byte(nil), payload...)
	}
	return rec, off + walHeaderLen + int(n), nil
}

// decodeWAL decodes the longest clean prefix of a log: records with
// valid headers, matching CRCs and strictly increasing non-zero LSNs.
// The clean prefix length is returned in bytes; if any bytes remain
// past it, the damage is reported as a typed *TornTailError. It never
// panics on hostile input and never allocates beyond a record's
// declared (validated) size — FuzzWALReplay hammers exactly this
// entrypoint.
func decodeWAL(data []byte) ([]WALRecord, int64, *TornTailError) {
	var (
		recs []WALRecord
		off  int
		lsn  uint64
	)
	for off < len(data) {
		rec, next, err := decodeWALRecord(data, off)
		if err != nil {
			return recs, int64(off), &TornTailError{Offset: int64(off), Reason: err.Error()}
		}
		if rec.LSN <= lsn {
			return recs, int64(off), &TornTailError{Offset: int64(off),
				Reason: fmt.Sprintf("non-monotonic LSN %d after %d", rec.LSN, lsn)}
		}
		lsn = rec.LSN
		recs = append(recs, rec)
		off = next
	}
	return recs, int64(off), nil
}

// Recovered is the durable state a store found on open: the latest
// checkpoint (nil when none was ever written), the clean-prefix WAL
// records past it, and the torn-tail report when the log's end was
// discarded (the expected shape after an append-crash; nil after a
// clean shutdown).
type Recovered struct {
	Checkpoint *Checkpoint
	Records    []WALRecord
	TornTail   *TornTailError
}

// StoreOptions tunes a Store.
type StoreOptions struct {
	// CheckpointEvery compacts the log into a checkpoint after this
	// many appended admission events (<= 0 selects
	// DefaultCheckpointEvery).
	CheckpointEvery int
}

// DefaultCheckpointEvery is the default compaction cadence.
const DefaultCheckpointEvery = 64

// Store owns one data directory: the append-only wal.log and the
// compacted checkpoint.json. Appends are serialized, synced to disk
// before they return, and framed by appendWALRecord; the server calls
// AppendSubmit/AppendLimits after each successful admission event so a
// restarted daemon replays to the exact pre-crash state. Safe for
// concurrent use.
type Store struct {
	mu     sync.Mutex
	dir    string
	f      *os.File
	lsn    uint64 // last appended (or recovered) LSN
	every  int
	since  int // records appended since the last checkpoint
	closed bool
}

// walPath and checkpointPath name the store's files.
func walPath(dir string) string        { return filepath.Join(dir, "wal.log") }
func checkpointPath(dir string) string { return filepath.Join(dir, "checkpoint.json") }

// OpenStore opens (creating if needed) the data directory and recovers
// its durable state: the latest checkpoint, then the WAL's clean
// prefix. A torn tail is truncated off the log file — the damage is in
// the returned report, not on disk — so the next append extends the
// clean prefix. The caller replays Recovered into a Server (UseStore)
// before serving.
func OpenStore(dir string, opts StoreOptions) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("controlplane: opening store: %w", err)
	}
	every := opts.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	rec := &Recovered{}

	// Checkpoint first: it is written atomically (temp + rename), so it
	// either exists whole or not at all. A checkpoint that does not
	// decode is real corruption, not a crash artifact — fail stop.
	if data, err := os.ReadFile(checkpointPath(dir)); err == nil {
		cp := &Checkpoint{}
		if err := json.Unmarshal(data, cp); err != nil {
			return nil, nil, fmt.Errorf("controlplane: corrupt checkpoint: %w", err)
		}
		if cp.FormatVersion != checkpointFormatVersion {
			return nil, nil, fmt.Errorf("controlplane: checkpoint format %d (this build speaks %d)",
				cp.FormatVersion, checkpointFormatVersion)
		}
		rec.Checkpoint = cp
	} else if !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("controlplane: reading checkpoint: %w", err)
	}
	// Leftover temp file from a crash mid-checkpoint: the rename never
	// happened, so it is dead weight.
	os.Remove(checkpointPath(dir) + ".tmp")

	data, err := os.ReadFile(walPath(dir))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("controlplane: reading WAL: %w", err)
	}
	recs, clean, torn := decodeWAL(data)
	rec.TornTail = torn

	lsn := uint64(0)
	if rec.Checkpoint != nil {
		lsn = rec.Checkpoint.LSN
	}
	// Records already compacted into the checkpoint (a crash between
	// the checkpoint rename and the log truncation) replay idempotently
	// by being skipped here.
	for _, r := range recs {
		if r.LSN > lsn {
			rec.Records = append(rec.Records, r)
			lsn = r.LSN
		}
	}

	f, err := os.OpenFile(walPath(dir), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("controlplane: opening WAL for append: %w", err)
	}
	// Drop the torn tail from disk so appends extend the clean prefix.
	if err := f.Truncate(clean); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("controlplane: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(clean, 0); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("controlplane: seeking WAL end: %w", err)
	}
	return &Store{dir: dir, f: f, lsn: lsn, every: every, since: len(rec.Records)}, rec, nil
}

// Dir returns the store's data directory.
func (st *Store) Dir() string { return st.dir }

// LSN returns the last appended (or recovered) log sequence number.
func (st *Store) LSN() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lsn
}

// append encodes and durably appends one record: the write and the
// fsync both complete before the admission decision is answered.
func (st *Store) append(kind RecordKind, payload []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return errors.New("controlplane: store closed")
	}
	st.lsn++
	buf := appendWALRecord(make([]byte, 0, walHeaderLen+len(payload)),
		WALRecord{LSN: st.lsn, Kind: kind, Payload: payload})
	if _, err := st.f.Write(buf); err != nil {
		return fmt.Errorf("controlplane: WAL append: %w", err)
	}
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("controlplane: WAL sync: %w", err)
	}
	st.since++
	return nil
}

// AppendSubmit durably logs one admission event.
func (st *Store) AppendSubmit(rec SubmitRecord) error {
	payload, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("controlplane: encoding submit record: %w", err)
	}
	return st.append(RecordSubmit, payload)
}

// AppendLimits durably logs one limits reconfiguration.
func (st *Store) AppendLimits(l Limits) error {
	payload, err := json.Marshal(&LimitsRecord{Limits: l})
	if err != nil {
		return fmt.Errorf("controlplane: encoding limits record: %w", err)
	}
	return st.append(RecordLimits, payload)
}

// ShouldCheckpoint reports whether enough has been appended since the
// last compaction to warrant a checkpoint.
func (st *Store) ShouldCheckpoint() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.since >= st.every
}

// WriteCheckpoint atomically replaces the checkpoint with the given
// full state and truncates the log it compacts: marshal, write to a
// temp file, fsync, rename, then truncate wal.log. A crash at any
// point leaves either the old checkpoint (plus the whole log) or the
// new one (plus a log whose stale prefix replay skips by LSN) — never
// a half-written state. The caller fills Seq/Limits/Snapshots; the
// store stamps the LSN boundary.
func (st *Store) WriteCheckpoint(cp *Checkpoint) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return errors.New("controlplane: store closed")
	}
	cp.FormatVersion = checkpointFormatVersion
	cp.LSN = st.lsn
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("controlplane: encoding checkpoint: %w", err)
	}
	tmp := checkpointPath(st.dir) + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("controlplane: writing checkpoint: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("controlplane: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("controlplane: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("controlplane: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, checkpointPath(st.dir)); err != nil {
		return fmt.Errorf("controlplane: installing checkpoint: %w", err)
	}
	// The records up to cp.LSN are now compacted; drop them.
	if err := st.f.Truncate(0); err != nil {
		return fmt.Errorf("controlplane: truncating compacted WAL: %w", err)
	}
	if _, err := st.f.Seek(0, 0); err != nil {
		return fmt.Errorf("controlplane: seeking compacted WAL: %w", err)
	}
	if err := st.f.Sync(); err != nil {
		return fmt.Errorf("controlplane: syncing compacted WAL: %w", err)
	}
	st.since = 0
	return nil
}

// Close flushes and closes the store. Safe to call twice.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return nil
	}
	st.closed = true
	if err := st.f.Sync(); err != nil {
		st.f.Close()
		return err
	}
	return st.f.Close()
}
