package parallel

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersNormalization(t *testing.T) {
	if got := Workers(0); got != runtime.NumCPU() {
		t.Fatalf("Workers(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Workers(-3); got != runtime.NumCPU() {
		t.Fatalf("Workers(-3) = %d, want NumCPU", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d, want 5", got)
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 64} {
		const n = 1000
		var hits [n]atomic.Int32
		if err := For(workers, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForReportsLowestFailingIndex(t *testing.T) {
	errBoom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := For(workers, 100, func(i int) error {
			if i == 17 || i == 61 {
				return errBoom
			}
			return nil
		})
		if !errors.Is(err, errBoom) {
			t.Fatalf("workers=%d: got %v, want errBoom", workers, err)
		}
	}
}

func TestForEmptyAndNegative(t *testing.T) {
	called := false
	if err := For(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := For(4, -5, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	_ = For(4, 16, func(i int) error {
		if i == 7 {
			panic("kaboom")
		}
		return nil
	})
}

func TestForChunksCoversRangeExactly(t *testing.T) {
	for _, workers := range []int{1, 3, 7, 16} {
		const n = 103
		var hits [n]atomic.Int32
		if err := ForChunks(workers, n, func(lo, hi int) error {
			if lo >= hi {
				t.Errorf("empty chunk [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if c := hits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestForChunksError(t *testing.T) {
	errBoom := errors.New("boom")
	err := ForChunks(4, 100, func(lo, hi int) error {
		if lo <= 50 && 50 < hi {
			return errBoom
		}
		return nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("got %v, want errBoom", err)
	}
}
