// Package parallel provides the repository's shared bounded worker-pool
// primitives: deterministic parallel-for loops over index ranges.
//
// Every concurrent fan-out in the library (the sharded greedy engine in
// internal/core, the Monte-Carlo simulator in internal/sim, and the
// per-point experiment sweeps in internal/experiments) funnels through
// this package so that worker-count normalization, error propagation,
// and panic safety are implemented exactly once.
//
// Determinism contract: For and ForChunks impose no ordering between
// iterations, so callers must make every iteration independent — write
// results to index-addressed slots, never append to shared slices, and
// derive per-iteration RNG streams from the iteration index (see
// stats.SplitMix64) rather than sharing a generator.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 select
// runtime.NumCPU() — the machine's full core count, so an unset
// -workers flag uses the hardware rather than whatever GOMAXPROCS
// happens to be capped to — and everything else is returned unchanged.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.NumCPU()
	}
	return requested
}

// For runs fn(i) for every i in [0, n) on up to workers goroutines and
// returns the error of the lowest failing index (so the reported error
// does not depend on goroutine scheduling). Panics inside fn are
// recovered and rethrown on the calling goroutine. workers <= 0 selects
// NumCPU; workers == 1 (or n <= 1) degrades to a plain sequential
// loop with zero goroutine overhead.
func For(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		panicVal any
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicVal == nil {
								panicVal = r
							}
							mu.Unlock()
							err = fmt.Errorf("parallel: panic in iteration %d: %v", i, r)
						}
					}()
					return fn(i)
				}()
				if err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return firstErr
}

// ForChunks partitions [0, n) into at most workers contiguous chunks of
// near-equal size and runs fn(lo, hi) for each chunk, following the same
// error and panic semantics as For. It suits loops whose per-index work
// is too cheap to schedule individually (e.g. the sharded gain scans of
// the parallel greedy engine).
func ForChunks(workers, n int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	return For(workers, workers, func(w int) error {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			return nil
		}
		return fn(lo, hi)
	})
}
