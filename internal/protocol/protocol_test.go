package protocol

import (
	"testing"

	"cool/internal/geometry"
	"cool/internal/netsim"
)

// gridEngine builds a connected grid network with the base at the
// origin and returns a ready engine.
func gridEngine(t *testing.T, cfg Config, netCfg netsim.Config, side int) (*Engine, *netsim.Network) {
	t.Helper()
	net, err := netsim.New(netCfg)
	if err != nil {
		t.Fatal(err)
	}
	id := netsim.NodeID(0)
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			pos := geometry.Point{X: float64(c) * 10, Y: float64(r) * 10}
			if err := net.AddNode(id, pos, 12); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	if !net.Connected() {
		t.Fatal("test grid not connected")
	}
	e, err := NewEngine(cfg, net)
	if err != nil {
		t.Fatal(err)
	}
	for i := netsim.NodeID(0); i < id; i++ {
		if err := e.Register(i); err != nil {
			t.Fatal(err)
		}
	}
	return e, net
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}, nil); err == nil {
		t.Error("nil network accepted")
	}
	net, err := netsim.New(netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(Config{}, net); err == nil {
		t.Error("network without base accepted")
	}
	if err := net.AddNode(BaseID, geometry.Point{}, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(Config{BeaconInterval: -1}, net); err == nil {
		t.Error("negative beacon interval accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{}, 2)
	if err := e.Register(0); err == nil {
		t.Error("double registration accepted")
	}
	if err := e.Register(99); err == nil {
		t.Error("unregistered network node accepted")
	}
}

func TestTickRequiresFullRegistration(t *testing.T) {
	net, err := netsim.New(netsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(BaseID, geometry.Point{}, 10); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(1, geometry.Point{X: 5}, 10); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Config{}, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(BaseID); err != nil {
		t.Fatal(err)
	}
	if err := e.Tick(); err == nil {
		t.Error("tick with unregistered nodes accepted")
	}
}

func TestTimeSyncConverges(t *testing.T) {
	e, _ := gridEngine(t, Config{BeaconInterval: 3}, netsim.Config{Seed: 1}, 4)
	ticks, ok, err := e.RunUntil(func() bool { return e.SyncedCount() == 16 }, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("sync did not converge: %d/16 after %d ticks", e.SyncedCount(), ticks)
	}
	// Slot estimates are accurate on the lossless next-tick medium.
	for id := netsim.NodeID(1); id < 16; id++ {
		slot, synced, err := e.NodeSlot(id)
		if err != nil {
			t.Fatal(err)
		}
		if !synced {
			t.Fatalf("node %d not synced", id)
		}
		baseSlot, _, err := e.NodeSlot(BaseID)
		if err != nil {
			t.Fatal(err)
		}
		diff := slot - baseSlot
		if diff < -1 || diff > 1 {
			t.Errorf("node %d slot %d vs base %d (drift %d)", id, slot, baseSlot, diff)
		}
	}
}

func TestNodeSlotUnknown(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{}, 2)
	if _, _, err := e.NodeSlot(99); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := e.NodeSchedule(99); err == nil {
		t.Error("unknown node accepted")
	}
}

func TestDistributeValidation(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{}, 2)
	if err := e.Distribute(ScheduleMsg{Period: 0}); err == nil {
		t.Error("zero period accepted")
	}
	if err := e.Distribute(ScheduleMsg{Period: 2, Assign: []int{5}}); err == nil {
		t.Error("out-of-range assignment accepted")
	}
}

func TestScheduleDisseminationLossless(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{Seed: 2}, 4)
	sched := ScheduleMsg{Version: 1, Period: 4, Assign: []int{0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3}}
	if err := e.Distribute(sched); err != nil {
		t.Fatal(err)
	}
	_, ok, err := e.RunUntil(e.AllAcked, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("dissemination incomplete: %d/16 acked", e.AckedCount())
	}
	// Every node holds the right schedule.
	for id := netsim.NodeID(1); id < 16; id++ {
		got, err := e.NodeSchedule(id)
		if err != nil {
			t.Fatal(err)
		}
		if got == nil || got.Version != 1 || got.Period != 4 || len(got.Assign) != 16 {
			t.Fatalf("node %d schedule = %+v", id, got)
		}
	}
}

func TestScheduleDisseminationSurvivesLoss(t *testing.T) {
	e, _ := gridEngine(t, Config{RefloodInterval: 5}, netsim.Config{Loss: 0.3, Seed: 3}, 4)
	sched := ScheduleMsg{Version: 1, Period: 2, Assign: make([]int, 16)}
	if err := e.Distribute(sched); err != nil {
		t.Fatal(err)
	}
	ticks, ok, err := e.RunUntil(e.AllAcked, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("dissemination under loss incomplete after %d ticks: %d/16", ticks, e.AckedCount())
	}
}

func TestScheduleVersionUpgrade(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{Seed: 4}, 3)
	if err := e.Distribute(ScheduleMsg{Version: 1, Period: 2, Assign: make([]int, 9)}); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := e.RunUntil(e.AllAcked, 300); err != nil || !ok {
		t.Fatalf("v1 dissemination failed: %v", err)
	}
	v2 := ScheduleMsg{Version: 2, Period: 4, Assign: make([]int, 9)}
	if err := e.Distribute(v2); err != nil {
		t.Fatal(err)
	}
	if e.AllAcked() {
		t.Error("acks should reset on new version")
	}
	if _, ok, err := e.RunUntil(e.AllAcked, 300); err != nil || !ok {
		t.Fatalf("v2 dissemination failed: %v", err)
	}
	got, err := e.NodeSchedule(8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || got.Period != 4 {
		t.Errorf("node kept stale schedule: %+v", got)
	}
}

func TestConvergecastCollectsReports(t *testing.T) {
	e, _ := gridEngine(t, Config{BeaconInterval: 2}, netsim.Config{Seed: 5}, 4)
	// Let the tree form first.
	if _, ok, err := e.RunUntil(func() bool { return e.SyncedCount() == 16 }, 300); err != nil || !ok {
		t.Fatalf("tree formation failed: %v", err)
	}
	for id := netsim.NodeID(1); id < 16; id++ {
		if err := e.Report(id, 7, float64(id)); err != nil {
			t.Fatal(err)
		}
	}
	_, ok, err := e.RunUntil(func() bool { return len(e.Collected()) >= 15 }, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("collected %d of 15 reports", len(e.Collected()))
	}
	seen := make(map[netsim.NodeID]bool)
	for _, r := range e.Collected() {
		if r.Slot != 7 || r.Value != float64(r.Origin) {
			t.Errorf("corrupted report %+v", r)
		}
		if seen[r.Origin] {
			t.Errorf("duplicate report from %d", r.Origin)
		}
		seen[r.Origin] = true
	}
}

// TestConvergecastSurvivesLoss: hop-by-hop acked retransmission keeps
// collection complete on a 30%-lossy medium.
func TestConvergecastSurvivesLoss(t *testing.T) {
	e, _ := gridEngine(t, Config{BeaconInterval: 2, ReportRetryInterval: 3},
		netsim.Config{Loss: 0.3, Seed: 8}, 4)
	if _, ok, err := e.RunUntil(func() bool { return e.SyncedCount() == 16 }, 1000); err != nil || !ok {
		t.Fatalf("tree formation failed: %v (synced %d)", err, e.SyncedCount())
	}
	for id := netsim.NodeID(1); id < 16; id++ {
		for seq := 0; seq < 3; seq++ {
			if err := e.Report(id, seq, float64(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ticks, ok, err := e.RunUntil(func() bool { return len(e.Collected()) >= 45 }, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("collected %d of 45 reports after %d ticks", len(e.Collected()), ticks)
	}
	// No duplicates despite retransmissions.
	seen := make(map[reportKey]bool)
	for _, r := range e.Collected() {
		k := reportKey{r.Origin, r.Seq}
		if seen[k] {
			t.Errorf("duplicate collected report %+v", r)
		}
		seen[k] = true
	}
}

func TestReportFromBaseCollectsDirectly(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{}, 2)
	if err := e.Report(BaseID, 1, 3.5); err != nil {
		t.Fatal(err)
	}
	if got := e.Collected(); len(got) != 1 || got[0].Value != 3.5 {
		t.Errorf("Collected = %+v", got)
	}
	if err := e.Report(99, 0, 0); err == nil {
		t.Error("report from unknown node accepted")
	}
}

func TestReportDeduplication(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{}, 2)
	// Same origin, distinct sequence numbers: both collected.
	if err := e.Report(BaseID, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Report(BaseID, 1, 2); err != nil {
		t.Fatal(err)
	}
	if len(e.Collected()) != 2 {
		t.Errorf("collected = %d, want 2", len(e.Collected()))
	}
}

func TestAllAckedWithoutSchedule(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{}, 2)
	if e.AllAcked() {
		t.Error("AllAcked true with no schedule")
	}
}

// TestReparentingAfterRelayFailure: killing a relay mid-collection
// forces its children to adopt a new parent from subsequent beacons and
// re-deliver their pending reports along the new route.
func TestReparentingAfterRelayFailure(t *testing.T) {
	// A 3-row corridor: base at origin; two parallel relay columns so an
	// alternative route exists when one relay dies.
	net, err := netsim.New(netsim.Config{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	add := func(id netsim.NodeID, x, y float64) {
		t.Helper()
		if err := net.AddNode(id, geometry.Point{X: x, Y: y}, 13); err != nil {
			t.Fatal(err)
		}
	}
	add(BaseID, 0, 0)
	add(1, 10, 5)  // relay A
	add(2, 10, -5) // relay B
	add(3, 20, 0)  // leaf reachable through either relay
	e, err := NewEngine(Config{BeaconInterval: 2, ReportRetryInterval: 3}, net)
	if err != nil {
		t.Fatal(err)
	}
	for id := netsim.NodeID(0); id <= 3; id++ {
		if err := e.Register(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := e.RunUntil(func() bool { return e.SyncedCount() == 4 }, 200); err != nil || !ok {
		t.Fatalf("tree formation failed: %v", err)
	}
	// Find the leaf's current relay and kill it.
	relay := netsim.NodeID(1)
	if e.nodes[3].parent == 2 {
		relay = 2
	}
	if e.nodes[3].parent != relay {
		t.Fatalf("leaf parent = %d, expected a relay", e.nodes[3].parent)
	}
	if err := net.SetDown(relay, true); err != nil {
		t.Fatal(err)
	}
	if err := e.Report(3, 5, 42); err != nil {
		t.Fatal(err)
	}
	_, ok, err := e.RunUntil(func() bool { return len(e.Collected()) >= 1 }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("report never arrived after relay failure")
	}
	got := e.Collected()[0]
	if got.Origin != 3 || got.Value != 42 {
		t.Errorf("collected %+v", got)
	}
	if e.nodes[3].parent == relay {
		t.Error("leaf still parented to the dead relay")
	}
}

func TestAckedCountProgress(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{Seed: 40}, 3)
	// The base always holds its own (future) schedule, so it counts as
	// acked from the start.
	if e.AckedCount() != 1 {
		t.Errorf("acked before distribute = %d, want 1 (base)", e.AckedCount())
	}
	if err := e.Distribute(ScheduleMsg{Version: 1, Period: 2, Assign: make([]int, 9)}); err != nil {
		t.Fatal(err)
	}
	if e.AckedCount() != 1 {
		t.Errorf("base should self-ack: %d", e.AckedCount())
	}
	if _, ok, err := e.RunUntil(e.AllAcked, 300); err != nil || !ok {
		t.Fatalf("dissemination failed: %v", err)
	}
	if e.AckedCount() != 9 {
		t.Errorf("acked = %d, want 9", e.AckedCount())
	}
}

func TestRunUntilImmediateAndTimeout(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{Seed: 41}, 2)
	ticks, ok, err := e.RunUntil(func() bool { return true }, 10)
	if err != nil || !ok || ticks != 0 {
		t.Errorf("immediate predicate: ticks=%d ok=%v err=%v", ticks, ok, err)
	}
	ticks, ok, err = e.RunUntil(func() bool { return false }, 5)
	if err != nil || ok || ticks != 5 {
		t.Errorf("timeout: ticks=%d ok=%v err=%v", ticks, ok, err)
	}
}

// TestAggregationLateArrivalForwarded: a partial aggregate arriving
// after the relay already sent its own is forwarded raw instead of
// silently dropped.
func TestAggregationLateArrivalForwarded(t *testing.T) {
	// Line topology: base - relay - leaf, with a slow leaf (big slack
	// makes the relay send before the leaf's aggregate arrives).
	net, err := netsim.New(netsim.Config{Seed: 42, MinDelay: 1, MaxDelay: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range []float64{0, 10, 20} {
		if err := net.AddNode(netsim.NodeID(i), geometry.Point{X: x}, 12); err != nil {
			t.Fatal(err)
		}
	}
	e, err := NewEngine(Config{BeaconInterval: 2}, net)
	if err != nil {
		t.Fatal(err)
	}
	for i := netsim.NodeID(0); i < 3; i++ {
		if err := e.Register(i); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := e.RunUntil(func() bool { return e.SyncedCount() == 3 }, 200); err != nil || !ok {
		t.Fatalf("sync failed: %v", err)
	}
	// Tight slack: depth budget 1 means relay and leaf share a deadline,
	// so the leaf's aggregate can reach the relay after it already sent.
	if err := e.StartAggregation(1, func(id netsim.NodeID) float64 { return 1 }, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.RunUntil(func() bool {
		res, _ := e.AggregateResult(1)
		return res.Count == 3
	}, 300); err != nil {
		t.Fatal(err)
	}
	res, _ := e.AggregateResult(1)
	if res.Count != 3 {
		t.Errorf("count = %d, want 3 (late arrivals must be forwarded)", res.Count)
	}
}
