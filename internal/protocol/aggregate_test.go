package protocol

import (
	"math"
	"testing"

	"cool/internal/netsim"
)

func TestAggregationLossless(t *testing.T) {
	e, _ := gridEngine(t, Config{BeaconInterval: 2}, netsim.Config{Seed: 21}, 4)
	// Let the tree form.
	if _, ok, err := e.RunUntil(func() bool { return e.SyncedCount() == 16 }, 300); err != nil || !ok {
		t.Fatalf("tree formation failed: %v", err)
	}
	value := func(id netsim.NodeID) float64 { return float64(id) }
	if err := e.StartAggregation(1, value, 8, 3); err != nil {
		t.Fatal(err)
	}
	_, ok, err := e.RunUntil(func() bool {
		res, _ := e.AggregateResult(1)
		return res.Count == 16
	}, 500)
	if err != nil {
		t.Fatal(err)
	}
	res, found := e.AggregateResult(1)
	if !found {
		t.Fatal("round not tracked")
	}
	if !ok {
		t.Fatalf("aggregation incomplete: %d/16", res.Count)
	}
	// Sum of 0..15 = 120, min 0, max 15, mean 7.5.
	if res.Sum != 120 || res.Min != 0 || res.Max != 15 {
		t.Errorf("aggregate = %+v", res)
	}
	if math.Abs(res.Mean()-7.5) > 1e-12 {
		t.Errorf("mean = %v", res.Mean())
	}
}

// TestAggregationPacketEfficiency: in-network aggregation moves O(n)
// packets total, far fewer than raw convergecast of n reports over
// multihop paths.
func TestAggregationPacketEfficiency(t *testing.T) {
	// Both methods run for the same number of ticks so that ambient
	// beacon traffic cancels out of the comparison.
	const measureTicks = 120
	run := func(aggregate bool) int {
		e, radio := gridEngine(t, Config{BeaconInterval: 2}, netsim.Config{Seed: 22}, 4)
		if _, ok, err := e.RunUntil(func() bool { return e.SyncedCount() == 16 }, 300); err != nil || !ok {
			t.Fatalf("tree formation failed: %v", err)
		}
		sentBefore, _, _ := radio.Stats()
		if aggregate {
			if err := e.StartAggregation(1, func(id netsim.NodeID) float64 { return 1 }, 8, 3); err != nil {
				t.Fatal(err)
			}
		} else {
			for id := netsim.NodeID(1); id < 16; id++ {
				if err := e.Report(id, 0, 1); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < measureTicks; i++ {
			if err := e.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		if aggregate {
			res, _ := e.AggregateResult(1)
			if res.Count != 16 {
				t.Fatalf("aggregation incomplete: %d/16", res.Count)
			}
		} else if len(e.Collected()) < 15 {
			t.Fatalf("collection incomplete: %d/15", len(e.Collected()))
		}
		sentAfter, _, _ := radio.Stats()
		return sentAfter - sentBefore
	}
	aggPackets := run(true)
	rawPackets := run(false)
	if aggPackets >= rawPackets {
		t.Errorf("aggregation used %d packets, raw convergecast %d — expected savings",
			aggPackets, rawPackets)
	}
}

func TestAggregationUnderLossPartial(t *testing.T) {
	e, _ := gridEngine(t, Config{BeaconInterval: 2}, netsim.Config{Loss: 0.3, Seed: 23}, 4)
	if _, ok, err := e.RunUntil(func() bool { return e.SyncedCount() == 16 }, 2000); err != nil || !ok {
		t.Fatalf("tree formation failed: %v", err)
	}
	if err := e.StartAggregation(2, func(id netsim.NodeID) float64 { return 1 }, 8, 4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := e.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	res, found := e.AggregateResult(2)
	if !found {
		t.Fatal("round missing")
	}
	// The base's own reading always lands; losses may drop subtrees but
	// the partial aggregate must stay consistent (count == sum here).
	if res.Count < 1 || res.Count > 16 {
		t.Errorf("count = %d out of [1,16]", res.Count)
	}
	if res.Sum != float64(res.Count) {
		t.Errorf("sum %v != count %d for all-ones readings", res.Sum, res.Count)
	}
}

func TestStartAggregationValidation(t *testing.T) {
	e, _ := gridEngine(t, Config{}, netsim.Config{}, 2)
	if err := e.StartAggregation(1, nil, 4, 2); err == nil {
		t.Error("nil value function accepted")
	}
	if err := e.StartAggregation(1, func(netsim.NodeID) float64 { return 0 }, 0, 2); err == nil {
		t.Error("zero depth budget accepted")
	}
	if err := e.StartAggregation(1, func(netsim.NodeID) float64 { return 0 }, 4, 0); err == nil {
		t.Error("zero slack accepted")
	}
	if _, ok := e.AggregateResult(99); ok {
		t.Error("untracked round reported")
	}
}

func TestAggMsgMerge(t *testing.T) {
	var a AggMsg
	a.merge(AggMsg{})
	if a.Count != 0 {
		t.Error("merging empty changed state")
	}
	a.merge(AggMsg{Count: 1, Sum: 5, Min: 5, Max: 5})
	a.merge(AggMsg{Count: 2, Sum: 3, Min: 1, Max: 2})
	if a.Count != 3 || a.Sum != 8 || a.Min != 1 || a.Max != 5 {
		t.Errorf("merge = %+v", a)
	}
	if (AggResult{}).Mean() != 0 {
		t.Error("empty mean should be 0")
	}
}
