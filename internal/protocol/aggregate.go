package protocol

import (
	"fmt"
	"math"

	"cool/internal/netsim"
)

// In-network aggregation: instead of forwarding every raw reading, each
// relay combines its children's partial aggregates with its own reading
// and sends a single packet up the tree — the standard
// convergecast-aggregation schedule, where nodes deeper in the tree
// transmit earlier so parents can fold their contributions in.
//
// Timing: a Query floods down with a per-node send deadline derived
// from tree depth. A node at depth h sends its partial aggregate
// (depthBudget − h)·slack ticks after adopting the query, so leaves
// (large h) send first and the root last.

// Query starts one aggregation round; it floods like a beacon.
type Query struct {
	// Round identifies the aggregation round.
	Round int
	// DepthBudget bounds the assumed tree depth.
	DepthBudget int
	// Slack is the per-level time allowance in ticks.
	Slack int
}

// AggMsg is a partial aggregate travelling toward the base.
type AggMsg struct {
	// Round echoes the query round.
	Round int
	// Count, Sum, Min, Max summarize the subtree's readings.
	Count    int
	Sum      float64
	Min, Max float64
}

// merge folds other into a.
func (a *AggMsg) merge(other AggMsg) {
	if other.Count == 0 {
		return
	}
	if a.Count == 0 {
		*a = other
		return
	}
	a.Count += other.Count
	a.Sum += other.Sum
	a.Min = math.Min(a.Min, other.Min)
	a.Max = math.Max(a.Max, other.Max)
}

// aggState is a node's per-round aggregation state.
type aggState struct {
	round   int
	partial AggMsg
	sendAt  int
	sent    bool
}

// AggResult is the base station's view of a completed round.
type AggResult struct {
	// Round is the aggregation round.
	Round int
	// Count is the number of readings folded in (≤ network size −
	// losses).
	Count int
	// Sum, Min, Max aggregate the readings; Mean is derived.
	Sum, Min, Max float64
}

// Mean returns Sum/Count (0 when empty).
func (r AggResult) Mean() float64 {
	if r.Count == 0 {
		return 0
	}
	return r.Sum / float64(r.Count)
}

// StartAggregation floods a query for one round. value supplies each
// node's reading for this round (including the base's own, when
// includeBase). depthBudget should exceed the tree depth; slack ≥ 2
// gives each level time to hear its children over the jittery medium.
func (e *Engine) StartAggregation(round int, value func(netsim.NodeID) float64, depthBudget, slack int) error {
	if value == nil {
		return fmt.Errorf("protocol: nil value function")
	}
	if depthBudget < 1 || slack < 1 {
		return fmt.Errorf("protocol: bad aggregation timing budget=%d slack=%d", depthBudget, slack)
	}
	if e.aggValues == nil {
		e.aggValues = make(map[int]func(netsim.NodeID) float64)
		e.aggResults = make(map[int]*AggMsg)
	}
	e.aggValues[round] = value
	e.aggResults[round] = &AggMsg{}
	// The base's own reading joins the final result directly.
	base := e.nodes[BaseID]
	v := value(BaseID)
	e.aggResults[round].merge(AggMsg{Round: round, Count: 1, Sum: v, Min: v, Max: v})
	_ = base
	return e.net.Broadcast(BaseID, Query{Round: round, DepthBudget: depthBudget, Slack: slack})
}

// AggregateResult returns the (possibly partial) result of a round.
func (e *Engine) AggregateResult(round int) (AggResult, bool) {
	p, ok := e.aggResults[round]
	if !ok {
		return AggResult{}, false
	}
	return AggResult{
		Round: round,
		Count: p.Count,
		Sum:   p.Sum,
		Min:   p.Min,
		Max:   p.Max,
	}, true
}

// handleQuery processes a query at a non-base node: adopt once,
// schedule the staggered send, and re-flood.
func (e *Engine) handleQuery(st *nodeState, q Query) {
	if st.id == BaseID {
		return
	}
	if st.agg != nil && st.agg.round >= q.Round {
		return // already participating in this or a newer round
	}
	valueFn := e.aggValues[q.Round]
	if valueFn == nil {
		return // stale round the base no longer tracks
	}
	depth := st.hops
	if depth <= 0 || depth > q.DepthBudget {
		depth = q.DepthBudget
	}
	v := valueFn(st.id)
	st.agg = &aggState{
		round: q.Round,
		partial: AggMsg{
			Round: q.Round, Count: 1, Sum: v, Min: v, Max: v,
		},
		sendAt: e.net.Now() + (q.DepthBudget-depth)*q.Slack + 1,
	}
	st.outbox = append(st.outbox, q) // continue the flood
}

// handleAggMsg folds a child's partial aggregate into this node's
// round state (or the base's final result).
func (e *Engine) handleAggMsg(st *nodeState, m AggMsg) {
	if st.id == BaseID {
		if res, ok := e.aggResults[m.Round]; ok {
			res.merge(m)
		}
		return
	}
	if st.agg == nil || st.agg.round != m.Round || st.agg.sent {
		// Too late to fold in: forward as-is so the data is not lost
		// (the parent or base can still use it).
		st.outbox = append(st.outbox, addressedAgg{msg: m})
		return
	}
	st.agg.partial.merge(m)
}

// addressedAgg marks an aggregate that must be forwarded to the parent
// without folding (late arrival).
type addressedAgg struct {
	msg AggMsg
}

// flushAggregates sends a node's partial aggregate when its staggered
// deadline arrives.
func (e *Engine) flushAggregates(st *nodeState) error {
	if st.id == BaseID || st.agg == nil || st.agg.sent {
		return nil
	}
	if e.net.Now() < st.agg.sendAt || st.parent < 0 {
		return nil
	}
	if err := e.net.Send(st.id, st.parent, st.agg.partial); err != nil {
		st.parent = -1
		return nil
	}
	st.agg.sent = true
	return nil
}
