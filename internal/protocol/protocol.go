// Package protocol implements the control-plane plumbing the paper's
// testbed needed around the scheduler: slot synchronization via base
// beacons, reliable dissemination of the computed activation schedule
// by controlled flooding, and multihop convergecast collection of
// sensed reports back to the base station.
//
// The protocols run over the lossy tick-driven radio network of
// internal/netsim and are deterministic given the network seed.
package protocol

import (
	"errors"
	"fmt"
	"sort"

	"cool/internal/netsim"
)

// BaseID is the conventional node ID of the base station.
const BaseID netsim.NodeID = 0

// Beacon is the periodic base-station announcement: it carries the
// current slot (clock sync) and a hop count (tree construction).
type Beacon struct {
	// Seq increments with every beacon round.
	Seq int
	// Slot is the base station's current time-slot number.
	Slot int
	// Hops is the distance the beacon has travelled from the base.
	Hops int
}

// ScheduleMsg floods the computed activation schedule.
type ScheduleMsg struct {
	// Version identifies the schedule (re-planning bumps it).
	Version int
	// Assign is the per-sensor slot assignment (see core.Schedule).
	Assign []int
	// Period is the schedule period in slots.
	Period int
	// Removal is true for ρ ≤ 1 passive-slot semantics.
	Removal bool
}

// Ack confirms schedule receipt, unicast hop-by-hop toward the base.
type Ack struct {
	// Version echoes the acknowledged schedule version.
	Version int
	// Origin is the acknowledging node.
	Origin netsim.NodeID
}

// Report is one sensed reading travelling up the collection tree.
type Report struct {
	// Origin is the sensing node.
	Origin netsim.NodeID
	// Seq deduplicates retransmissions per origin.
	Seq int
	// Slot is the slot the reading was taken in.
	Slot int
	// Value is the reading payload.
	Value float64
}

// ReportAck is the hop-by-hop acknowledgement of a Report: each relay
// (and the base) acks the transmitting neighbor, which retransmits
// unacked reports until the ack survives the lossy link.
type ReportAck struct {
	// Origin and Seq identify the acknowledged report.
	Origin netsim.NodeID
	Seq    int
}

// reportKey identifies a report end-to-end.
type reportKey struct {
	origin netsim.NodeID
	seq    int
}

// pendingReport is a report awaiting a hop-by-hop ack.
type pendingReport struct {
	report   Report
	lastSent int
}

// nodeState is the per-node protocol state machine.
type nodeState struct {
	id netsim.NodeID
	// clock sync
	slot    int
	synced  bool
	hops    int
	parent  netsim.NodeID
	lastSeq int
	// schedule
	schedule  *ScheduleMsg
	acked     bool
	lastFlood int // tick of the node's last schedule rebroadcast
	// pending rebroadcasts (payloads to transmit on the next tick)
	outbox []any
	// collection
	nextReportSeq int
	pending       map[reportKey]*pendingReport
	seenReports   map[reportKey]bool
	// aggregation
	agg *aggState
}

// Config tunes the protocol engine.
type Config struct {
	// BeaconInterval is the tick spacing of base beacons (default 5).
	BeaconInterval int
	// RefloodInterval re-floods an unacked schedule every so many ticks
	// (default 10).
	RefloodInterval int
	// ReportRetryInterval retransmits unacked reports every so many
	// ticks (default 4).
	ReportRetryInterval int
}

func (c *Config) defaults() error {
	if c.BeaconInterval == 0 {
		c.BeaconInterval = 5
	}
	if c.RefloodInterval == 0 {
		c.RefloodInterval = 10
	}
	if c.ReportRetryInterval == 0 {
		c.ReportRetryInterval = 4
	}
	if c.BeaconInterval < 1 || c.RefloodInterval < 1 || c.ReportRetryInterval < 1 {
		return fmt.Errorf("protocol: non-positive intervals %+v", *c)
	}
	return nil
}

// Engine drives the protocols over a radio network. The base station
// must be registered in the network as BaseID.
type Engine struct {
	cfg   Config
	net   *netsim.Network
	nodes map[netsim.NodeID]*nodeState
	order []netsim.NodeID
	// base state
	beaconSeq   int
	baseSlot    int
	schedule    *ScheduleMsg
	ackedBy     map[netsim.NodeID]bool
	collected   []Report
	seenReports map[string]bool
	aggValues   map[int]func(netsim.NodeID) float64
	aggResults  map[int]*AggMsg
	// rx is the reused delivery buffer for netsim.ReceiveInto: one
	// engine drains every node's inbox through it each tick, so the
	// per-node per-tick Receive allocation of the old API is gone.
	rx []netsim.Message
}

// NewEngine wraps a network whose nodes are already registered. Every
// registered node (including BaseID) becomes a protocol participant.
func NewEngine(cfg Config, net *netsim.Network) (*Engine, error) {
	if net == nil {
		return nil, errors.New("protocol: nil network")
	}
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if _, err := net.Position(BaseID); err != nil {
		return nil, fmt.Errorf("protocol: base station missing: %w", err)
	}
	e := &Engine{
		cfg:         cfg,
		net:         net,
		nodes:       make(map[netsim.NodeID]*nodeState),
		ackedBy:     map[netsim.NodeID]bool{BaseID: true},
		seenReports: make(map[string]bool),
	}
	return e, nil
}

// Register adds a node to the protocol engine. All network nodes must
// be registered before Tick is called.
func (e *Engine) Register(id netsim.NodeID) error {
	if _, ok := e.nodes[id]; ok {
		return fmt.Errorf("protocol: node %d already registered", id)
	}
	if _, err := e.net.Position(id); err != nil {
		return err
	}
	st := &nodeState{
		id: id, parent: -1, lastSeq: -1, lastFlood: -1 << 30,
		pending:     make(map[reportKey]*pendingReport),
		seenReports: make(map[reportKey]bool),
	}
	if id == BaseID {
		st.synced = true
		st.acked = true
	}
	e.nodes[id] = st
	// In-place sorted insertion: binary search + shift instead of a
	// full re-sort per registration (the old path was O(n² log n) for a
	// fleet of n, the same bulk-registration bug netsim.AddNode had).
	at := sort.Search(len(e.order), func(i int) bool { return e.order[i] >= id })
	e.order = append(e.order, 0)
	copy(e.order[at+1:], e.order[at:])
	e.order[at] = id
	return nil
}

// Distribute loads a schedule into the base station for flooding.
func (e *Engine) Distribute(msg ScheduleMsg) error {
	if msg.Period <= 0 {
		return fmt.Errorf("protocol: non-positive period %d", msg.Period)
	}
	for v, slot := range msg.Assign {
		if slot < -1 || slot >= msg.Period {
			return fmt.Errorf("protocol: sensor %d slot %d outside [-1,%d)", v, slot, msg.Period)
		}
	}
	cp := msg
	cp.Assign = append([]int(nil), msg.Assign...)
	e.schedule = &cp
	e.ackedBy = map[netsim.NodeID]bool{BaseID: true}
	base := e.nodes[BaseID]
	base.schedule = &cp
	return nil
}

// Report queues a sensed reading at a node for convergecast delivery.
func (e *Engine) Report(id netsim.NodeID, slot int, value float64) error {
	st, ok := e.nodes[id]
	if !ok {
		return fmt.Errorf("protocol: unknown node %d", id)
	}
	if id == BaseID {
		e.collect(Report{Origin: id, Seq: st.nextReportSeq, Slot: slot, Value: value})
		st.nextReportSeq++
		return nil
	}
	r := Report{Origin: id, Seq: st.nextReportSeq, Slot: slot, Value: value}
	st.nextReportSeq++
	st.pending[reportKey{r.Origin, r.Seq}] = &pendingReport{report: r, lastSent: -1 << 30}
	return nil
}

func (e *Engine) collect(r Report) {
	key := fmt.Sprintf("%d/%d", r.Origin, r.Seq)
	if e.seenReports[key] {
		return
	}
	e.seenReports[key] = true
	e.collected = append(e.collected, r)
}

// Tick advances one protocol round: base emissions, inbox processing,
// queued retransmissions, then one network step.
func (e *Engine) Tick() error {
	if len(e.nodes) != e.net.NumNodes() {
		return fmt.Errorf("protocol: %d registered of %d network nodes",
			len(e.nodes), e.net.NumNodes())
	}
	now := e.net.Now()

	// Base station: periodic beacon, periodic schedule re-flood.
	if now%e.cfg.BeaconInterval == 0 {
		e.beaconSeq++
		if err := e.net.Broadcast(BaseID, Beacon{Seq: e.beaconSeq, Slot: e.baseSlot, Hops: 1}); err != nil {
			return err
		}
	}
	if e.schedule != nil && now%e.cfg.RefloodInterval == 0 && !e.AllAcked() {
		if err := e.net.Broadcast(BaseID, *e.schedule); err != nil {
			return err
		}
	}

	// Every node: drain inbox, react, flush outbox. The drain goes
	// through ReceiveInto with the engine's reused buffer — zero
	// allocations per node once the buffer has warmed up.
	for _, id := range e.order {
		st := e.nodes[id]
		msgs, err := e.net.ReceiveInto(id, e.rx)
		if err != nil {
			return err
		}
		e.rx = msgs
		for _, m := range msgs {
			if err := e.handle(st, m); err != nil {
				return err
			}
		}
		for _, payload := range st.outbox {
			if err := e.transmit(st, payload); err != nil {
				return err
			}
		}
		st.outbox = st.outbox[:0]
		if err := e.flushReports(st); err != nil {
			return err
		}
		if err := e.flushAggregates(st); err != nil {
			return err
		}
	}

	e.net.Step()
	// Clocks advance every tick: the base authoritatively, synchronized
	// nodes by extrapolation between beacons.
	e.baseSlot++
	for _, id := range e.order {
		if st := e.nodes[id]; st.id != BaseID && st.synced {
			st.slot++
		}
	}
	return nil
}

// transmit routes one payload: beacons and schedules re-broadcast;
// schedule acks unicast to the parent (when known); report acks unicast
// to an explicit neighbor.
func (e *Engine) transmit(st *nodeState, payload any) error {
	switch p := payload.(type) {
	case Beacon, ScheduleMsg, Query:
		return e.net.Broadcast(st.id, p)
	case addressedAgg:
		if st.parent < 0 {
			st.outbox = append(st.outbox, p)
			return nil
		}
		if err := e.net.Send(st.id, st.parent, p.msg); err != nil {
			st.parent = -1
			st.outbox = append(st.outbox, p)
		}
		return nil
	case Ack:
		if st.parent < 0 {
			// No route yet; requeue for the next tick.
			st.outbox = append(st.outbox, p)
			return nil
		}
		if err := e.net.Send(st.id, st.parent, p); err != nil {
			// Parent link broke (should not happen in static fields);
			// drop the parent and requeue.
			st.parent = -1
			st.outbox = append(st.outbox, p)
		}
		return nil
	case addressed:
		return e.net.Send(st.id, p.to, p.payload)
	default:
		return fmt.Errorf("protocol: unknown payload %T", payload)
	}
}

// addressed wraps a payload with an explicit unicast destination.
type addressed struct {
	to      netsim.NodeID
	payload any
}

// flushReports retransmits this node's unacked reports to its current
// parent, oldest-key first for determinism.
func (e *Engine) flushReports(st *nodeState) error {
	if len(st.pending) == 0 || st.parent < 0 {
		return nil
	}
	now := e.net.Now()
	keys := make([]reportKey, 0, len(st.pending))
	for k := range st.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].origin != keys[j].origin {
			return keys[i].origin < keys[j].origin
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		p := st.pending[k]
		if now-p.lastSent < e.cfg.ReportRetryInterval {
			continue
		}
		if err := e.net.Send(st.id, st.parent, p.report); err != nil {
			st.parent = -1
			return nil
		}
		p.lastSent = now
	}
	return nil
}

func (e *Engine) handle(st *nodeState, m netsim.Message) error {
	switch p := m.Payload.(type) {
	case Beacon:
		if st.id == BaseID {
			return nil
		}
		// Adopt fresher beacons, or shorter routes within a round.
		if p.Seq > st.lastSeq || (p.Seq == st.lastSeq && p.Hops < st.hops) {
			fresh := p.Seq > st.lastSeq
			st.lastSeq = p.Seq
			st.hops = p.Hops
			st.parent = m.From
			st.slot = p.Slot + p.Hops // compensate propagation delay
			st.synced = true
			if fresh {
				st.outbox = append(st.outbox, Beacon{Seq: p.Seq, Slot: p.Slot, Hops: p.Hops + 1})
			}
		}
	case ScheduleMsg:
		if st.id == BaseID {
			return nil
		}
		if st.schedule == nil || p.Version > st.schedule.Version {
			cp := p
			cp.Assign = append([]int(nil), p.Assign...)
			st.schedule = &cp
			st.outbox = append(st.outbox, cp)
			st.lastFlood = e.net.Now()
		} else if p.Version == st.schedule.Version &&
			e.net.Now()-st.lastFlood >= e.cfg.RefloodInterval {
			// Relay the base's periodic refloods (rate-limited) so that
			// nodes whose first wave was lost keep getting copies: the
			// base alone cannot reach beyond its one-hop neighborhood.
			st.outbox = append(st.outbox, *st.schedule)
			st.lastFlood = e.net.Now()
		}
		// Ack every receipt: acks travel over lossy links, so a single
		// ack per version could be lost forever while the base keeps
		// re-flooding. Duplicate acks are idempotent at the base.
		st.outbox = append(st.outbox, Ack{Version: p.Version, Origin: st.id})
		st.acked = true
	case Ack:
		if st.id == BaseID {
			if e.schedule != nil && p.Version == e.schedule.Version {
				e.ackedBy[p.Origin] = true
			}
			return nil
		}
		// Relay toward the base.
		st.outbox = append(st.outbox, p)
	case Report:
		// Hop-by-hop reliability: always ack the transmitting neighbor,
		// forward (once) toward the base.
		st.outbox = append(st.outbox, addressed{
			to:      m.From,
			payload: ReportAck{Origin: p.Origin, Seq: p.Seq},
		})
		if st.id == BaseID {
			e.collect(p)
			return nil
		}
		key := reportKey{p.Origin, p.Seq}
		if !st.seenReports[key] {
			st.seenReports[key] = true
			st.pending[key] = &pendingReport{report: p, lastSent: -1 << 30}
		}
	case ReportAck:
		delete(st.pending, reportKey{p.Origin, p.Seq})
	case Query:
		e.handleQuery(st, p)
	case AggMsg:
		e.handleAggMsg(st, p)
	default:
		return fmt.Errorf("protocol: node %d received unknown payload %T", st.id, m.Payload)
	}
	return nil
}

// AllAcked reports whether every registered node acknowledged the
// current schedule version.
func (e *Engine) AllAcked() bool {
	if e.schedule == nil {
		return false
	}
	for _, id := range e.order {
		if !e.ackedBy[id] {
			return false
		}
	}
	return true
}

// AckedCount returns how many nodes acknowledged the current schedule.
func (e *Engine) AckedCount() int {
	n := 0
	for _, id := range e.order {
		if e.ackedBy[id] {
			n++
		}
	}
	return n
}

// SyncedCount returns how many nodes have a synchronized slot clock.
func (e *Engine) SyncedCount() int {
	n := 0
	for _, id := range e.order {
		if e.nodes[id].synced {
			n++
		}
	}
	return n
}

// NodeSchedule returns the schedule a node currently holds (nil if none).
func (e *Engine) NodeSchedule(id netsim.NodeID) (*ScheduleMsg, error) {
	st, ok := e.nodes[id]
	if !ok {
		return nil, fmt.Errorf("protocol: unknown node %d", id)
	}
	return st.schedule, nil
}

// NodeSlot returns a node's synchronized slot estimate.
func (e *Engine) NodeSlot(id netsim.NodeID) (slot int, synced bool, err error) {
	st, ok := e.nodes[id]
	if !ok {
		return 0, false, fmt.Errorf("protocol: unknown node %d", id)
	}
	if id == BaseID {
		return e.baseSlot, true, nil
	}
	return st.slot, st.synced, nil
}

// Collected returns the reports the base station has received, in
// arrival order.
func (e *Engine) Collected() []Report {
	return append([]Report(nil), e.collected...)
}

// RunUntil ticks the engine until the predicate holds or maxTicks pass.
// It returns the number of ticks executed and whether the predicate was
// satisfied.
func (e *Engine) RunUntil(pred func() bool, maxTicks int) (int, bool, error) {
	for i := 0; i < maxTicks; i++ {
		if pred() {
			return i, true, nil
		}
		if err := e.Tick(); err != nil {
			return i, false, err
		}
	}
	return maxTicks, pred(), nil
}
