package shard

import (
	"fmt"
	"runtime"

	"cool/internal/geometry"
	"cool/internal/geometry/grid"
	"cool/internal/netsim"
	"cool/internal/parallel"
	"cool/internal/stats"
)

// NetOptions configures a sharded radio network.
type NetOptions struct {
	// Shards is the requested partition count; <= 0 selects
	// runtime.NumCPU(). The effective count is clamped to the populated
	// cut geometry (EffectiveShards reports it).
	Shards int
	// Workers bounds the goroutines ticking partitions concurrently in
	// Step (<= 0 selects NumCPU; 1 degrades to a plain sequential loop).
	Workers int
	// Loss, MinDelay, MaxDelay, Seed mirror netsim.Config.
	Loss               float64
	MinDelay, MaxDelay int
	Seed               uint64
}

// tx is one queued cross-border broadcast replay, captured at Batch
// time and flushed into the destination partition at the next Step.
type tx struct {
	from    netsim.NodeID
	pos     geometry.Point
	radio   float64
	payload any
}

// netNode is the router's view of one registered node.
type netNode struct {
	home  int
	pos   geometry.Point
	radio float64
}

// Net is the sharded radio medium: the deployment is cut into vertical
// strips (the same cutsFor geometry as the planner), each strip is a
// flat netsim.Network holding exactly its home nodes, and the strips
// tick in lockstep. A broadcast runs locally in the sender's home
// partition via Batch; when the sender's radio disk crosses a cut, the
// broadcast is also queued for every adjacent partition it can reach
// and replayed there via netsim.BatchFrom at the start of the next
// Step — before the tick advances, so SentAt and DeliveredAt match a
// single global core's exactly. Every receiver is registered in exactly
// one partition, so the summed packet counters equal a global run's.
//
// Determinism: with Shards = 1 the single partition is seeded with
// NetOptions.Seed directly and is the global flat core — identical
// trace, counters and RNG draw sequence. With k > 1 each partition owns
// an independent RNG stream (stats.StreamSeed), so under lossless
// fixed-delay configurations the delivery trace is identical to the
// global core's up to the enqueue order within one (tick, receiver)
// bucket — the equivalence tests normalize by sorting each bucket on
// the sender ID. Down transitions must happen at tick boundaries
// (before the tick's sends) to preserve exact equivalence: the foreign
// replay re-checks receiver liveness at flush time, the global core at
// send time.
//
// Net is not safe for concurrent use; only Step fans out internally.
type Net struct {
	cuts    []float64
	cores   []*netsim.Network
	nodes   map[netsim.NodeID]netNode
	queues  [][]tx // queues[d]: replays pending for partition d
	workers int
	now     int
	// stepOne is built once so the per-tick parallel.For does not
	// allocate a fresh closure (the zero-alloc Step gate).
	stepOne func(s int) error
}

// NewNet partitions the fleet into at most o.Shards strips and builds
// one flat netsim core per strip. The cut geometry is derived from the
// node positions with their radio ranges as reach, so a grid cell side
// is at least the maximum radio range and a broadcast can only reach
// partitions its radio disk overlaps.
func NewNet(specs []netsim.NodeSpec, o NetOptions) (*Net, error) {
	k := o.Shards
	if k <= 0 {
		k = runtime.NumCPU()
	}
	if k > len(specs) {
		k = len(specs)
	}
	if k < 1 {
		k = 1
	}

	var cuts []float64
	if k > 1 {
		items := make([]grid.Item, len(specs))
		xs := make([]float64, len(specs))
		for i, s := range specs {
			items[i] = grid.Item{Pos: grid.Point(s.Pos), Reach: s.Radio}
			xs[i] = s.Pos.X
		}
		cuts = cutsFor(grid.Build(items), xs, k)
	}
	kEff := len(cuts) + 1

	n := &Net{
		cuts:    cuts,
		cores:   make([]*netsim.Network, kEff),
		nodes:   make(map[netsim.NodeID]netNode, len(specs)),
		queues:  make([][]tx, kEff),
		workers: o.Workers,
	}
	var maxRadio float64
	perShard := make([][]netsim.NodeSpec, kEff)
	for _, s := range specs {
		if _, dup := n.nodes[s.ID]; dup {
			return nil, fmt.Errorf("shard: duplicate node %d", s.ID)
		}
		home := homeOf(cuts, s.Pos.X)
		n.nodes[s.ID] = netNode{home: home, pos: s.Pos, radio: s.Radio}
		perShard[home] = append(perShard[home], s)
		if s.Radio > maxRadio {
			maxRadio = s.Radio
		}
	}
	for s := 0; s < kEff; s++ {
		seed := o.Seed
		if kEff > 1 {
			seed = stats.StreamSeed(o.Seed, uint64(s))
		}
		core, err := netsim.NewNetwork(
			netsim.WithLoss(o.Loss),
			netsim.WithDelay(o.MinDelay, o.MaxDelay),
			netsim.WithSeed(seed),
		)
		if err != nil {
			return nil, err
		}
		if err := core.AddNodes(perShard[s]); err != nil {
			return nil, err
		}
		// Foreign transmitters may out-range every local node; widen the
		// index so their replays stay on the grid query path.
		core.ReserveReach(maxRadio)
		n.cores[s] = core
	}
	n.stepOne = func(s int) error {
		n.cores[s].Step()
		return nil
	}
	return n, nil
}

// EffectiveShards returns the partition count after geometric clamping.
func (n *Net) EffectiveShards() int { return len(n.cores) }

// Cuts returns the strip boundaries (ascending x, EffectiveShards-1 of
// them).
func (n *Net) Cuts() []float64 { return append([]float64(nil), n.cuts...) }

// Now returns the current tick.
func (n *Net) Now() int { return n.now }

// NumNodes returns the registered fleet size.
func (n *Net) NumNodes() int { return len(n.nodes) }

// Batch broadcasts a payload from a node: immediately into its home
// partition, and — when the radio disk crosses a cut — queued for
// replay into every adjacent partition it reaches at the next Step.
// The return value counts the home-partition packets; cross-border
// packets join the Stats counters when their replay flushes (same
// tick, so cumulative counters observed between ticks are exact).
func (n *Net) Batch(from netsim.NodeID, payload any) (int, error) {
	info, ok := n.nodes[from]
	if !ok {
		return 0, fmt.Errorf("%w: %d", netsim.ErrUnknownNode, from)
	}
	home := n.cores[info.home]
	if home.IsDown(from) {
		return 0, nil
	}
	sent, err := home.Batch(from, payload)
	if err != nil {
		return 0, err
	}
	lo := homeOf(n.cuts, info.pos.X-info.radio)
	hi := homeOf(n.cuts, info.pos.X+info.radio)
	for d := lo; d <= hi; d++ {
		if d == info.home {
			continue
		}
		n.queues[d] = append(n.queues[d], tx{from: from, pos: info.pos, radio: info.radio, payload: payload})
	}
	return sent, nil
}

// Step flushes the queued cross-border replays into their destination
// partitions (still at the current tick, so timestamps match a global
// core), then advances every partition one tick, fanned out over
// Workers goroutines. Queue slots are zeroed on flush so retained
// capacity does not pin payload references; in steady state the call
// performs no allocations with Workers = 1.
func (n *Net) Step() {
	for d, q := range n.queues {
		core := n.cores[d]
		for i, t := range q {
			core.BatchFrom(t.from, t.pos, t.radio, t.payload)
			q[i] = tx{}
		}
		n.queues[d] = q[:0]
	}
	parallel.For(n.workers, len(n.cores), n.stepOne)
	n.now++
}

// ReceiveInto drains a node's inbox via its home partition (see
// netsim.Network.ReceiveInto).
func (n *Net) ReceiveInto(id netsim.NodeID, buf []netsim.Message) ([]netsim.Message, error) {
	info, ok := n.nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", netsim.ErrUnknownNode, id)
	}
	return n.cores[info.home].ReceiveInto(id, buf)
}

// SetDown marks a node failed (or recovered) in its home partition.
func (n *Net) SetDown(id netsim.NodeID, down bool) error {
	info, ok := n.nodes[id]
	if !ok {
		return fmt.Errorf("%w: %d", netsim.ErrUnknownNode, id)
	}
	return n.cores[info.home].SetDown(id, down)
}

// IsDown reports whether a node is currently failed.
func (n *Net) IsDown(id netsim.NodeID) bool {
	info, ok := n.nodes[id]
	return ok && n.cores[info.home].IsDown(id)
}

// Stats sums the partitions' cumulative packet counters. Every receiver
// is registered in exactly one partition, so between ticks the sums
// equal a global core's counters exactly.
func (n *Net) Stats() (sent, delivered, dropped int) {
	for _, c := range n.cores {
		s, d, p := c.Stats()
		sent += s
		delivered += d
		dropped += p
	}
	return sent, delivered, dropped
}
