package shard

import (
	"errors"
	"fmt"
	"runtime"

	"cool/internal/core"
	"cool/internal/parallel"
)

// runEngine dispatches a flat instance to the configured engine: the
// cached eager Greedy, or the CELF lazy variant matching the mode. All
// of them produce bit-identical schedules on the same instance, so the
// choice only affects speed.
func runEngine(in core.Instance, mode core.Mode, lazy bool) (*core.Schedule, error) {
	if !lazy {
		return core.Greedy(in)
	}
	if mode == core.ModeRemoval {
		return core.LazyGreedyRemoval(in)
	}
	return core.LazyGreedy(in)
}

// Plan computes an activation schedule by geometric sharding: partition
// the field into k vertical strips, plan every strip independently with
// the flat engine (concurrently over Options.Workers), merge the
// per-strip assignments, and repair the border with the bounded
// correction sweep. k = 1 (after clamping) bypasses the decomposition
// and returns the global engine's schedule bit-identically.
func Plan(p *Problem, opts Options) (*Result, error) {
	if p == nil {
		return nil, errors.New("shard: nil problem")
	}
	if err := p.Global.Validate(); err != nil {
		return nil, err
	}
	if len(p.Sensors) != p.Global.N {
		return nil, fmt.Errorf("shard: %d sensor geometries for %d sensors", len(p.Sensors), p.Global.N)
	}
	if p.Period != p.Global.Period {
		return nil, fmt.Errorf("shard: problem period %+v != instance period %+v", p.Period, p.Global.Period)
	}
	mode := core.ModeFor(p.Period)

	k := opts.Shards
	if k <= 0 {
		k = runtime.NumCPU()
	}
	requested := k
	if k > p.Global.N {
		k = p.Global.N
	}

	if k == 1 {
		return planGlobal(p, opts, mode, requested)
	}

	pt := newPartition(p, k)
	if pt.shards() == 1 {
		// The populated geometry cannot host more than one strip (all
		// sensors in one grid column, degenerate extents, ...): graceful
		// degradation to the global engine.
		return planGlobal(p, opts, mode, requested)
	}
	if p.BuildShard == nil {
		return nil, errors.New("shard: Problem.BuildShard is nil")
	}

	kEff := pt.shards()
	assign := make([]int, p.Global.N)
	for v := range assign {
		assign[v] = -1
	}
	err := parallel.For(opts.Workers, kEff, func(s int) error {
		sensors := pt.shardSensors[s]
		if len(sensors) == 0 {
			return nil
		}
		factory, err := p.BuildShard(sensors, pt.shardTargets[s])
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		sub := core.Instance{N: len(sensors), Period: p.Period, Factory: factory}
		sched, err := runEngine(sub, mode, opts.Lazy)
		if err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
		// Index-addressed merge: every global ID belongs to exactly one
		// strip, so concurrent writes never collide.
		for u, t := range sched.Assignment() {
			assign[sensors[u]] = t
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	T := p.Period.Slots()
	before, err := core.NewSchedule(mode, T, assign)
	if err != nil {
		return nil, err
	}
	res := &Result{
		RequestedShards: requested,
		EffectiveShards: kEff,
		Interior:        p.Global.N - len(pt.haloList),
		Halo:            len(pt.haloList),
		UtilityBefore:   before.PeriodUtility(p.Global.Factory),
		Cuts:            append([]float64(nil), pt.cuts...),
	}

	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	if maxRounds > 0 {
		res.Rounds, res.Moves, err = correctionSweep(p.Global, mode, assign, pt.haloList, maxRounds)
		if err != nil {
			return nil, err
		}
	}

	res.Schedule, err = core.NewSchedule(mode, T, assign)
	if err != nil {
		return nil, err
	}
	res.Utility = res.Schedule.PeriodUtility(p.Global.Factory)
	return res, nil
}

// planGlobal is the k = 1 path: the global engine on the full instance,
// wrapped in the sharded Result shape with the decomposition fields
// reporting the trivial partition.
func planGlobal(p *Problem, opts Options, mode core.Mode, requested int) (*Result, error) {
	sched, err := runEngine(p.Global, mode, opts.Lazy)
	if err != nil {
		return nil, err
	}
	u := sched.PeriodUtility(p.Global.Factory)
	return &Result{
		Schedule:        sched,
		RequestedShards: requested,
		EffectiveShards: 1,
		Interior:        p.Global.N,
		UtilityBefore:   u,
		Utility:         u,
	}, nil
}
