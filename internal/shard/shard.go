// Package shard scales field planning and packet simulation to
// million-node deployments by geometric decomposition: the deployment
// is cut into k vertical strips along grid-cell boundaries (reusing the
// internal/geometry/grid cell geometry), each strip is planned or
// simulated by the existing flat engines independently, and the strips
// are stitched back together at the borders.
//
// # Why this is sound
//
// Sensing is spatially local: a sensor's footprint is contained in the
// Chebyshev square [x±reach] × [y±reach] (the grid.Item contract), so a
// sensor can cover a target homed in a different strip only when its
// footprint crosses the cut between them — such sensors are classified
// *halo*, everything else is *interior*. An interior sensor's entire
// coverage lives inside its home strip, which its shard planner saw in
// full; the only cross-strip utility the per-shard plans can miss is
// carried by halo sensors. The bounded border-correction sweep
// (correct.go) therefore re-argmaxes exactly the halo sensors against
// the merged global per-slot oracles, repairing every dropped
// cross-border marginal in O(halo · T · degree) per round.
//
// The decomposition is a heuristic, not an approximation theorem: the
// planner reports the achieved utility (and the caller benchmarks the
// gap against the global greedy) as a first-class output, so a speedup
// is never quoted without its quality cost. k = 1 bypasses the
// decomposition entirely and is bit-identical to the global engine.
//
// The same strip geometry shards the packet simulator (net.go):
// per-strip flat netsim cores tick in lockstep and exchange boundary
// packets each tick through netsim.BatchFrom injections, keeping the
// summed packet counters exactly equal to a single global core's.
package shard

import (
	"cool/internal/core"
	"cool/internal/energy"
)

// SensorGeom is the partitioner's view of one sensor: its anchor and
// the Chebyshev reach of its footprint (wsn.Sensor.Reach). Index in the
// slice is the sensor's global ID.
type SensorGeom struct {
	X, Y  float64
	Reach float64
}

// TargetGeom is the partitioner's view of one target.
type TargetGeom struct {
	X, Y float64
}

// Problem is one sharded planning problem: the deployment geometry, the
// global instance (the k=1 / correction-sweep oracle source), and a
// factory for per-shard sub-utilities.
type Problem struct {
	// Sensors holds the geometry of every sensor, indexed by global ID;
	// len(Sensors) must equal Global.N.
	Sensors []SensorGeom
	// Targets holds the geometry of every target.
	Targets []TargetGeom
	// Period is the charging period (must match Global.Period).
	Period energy.Period
	// Global is the full flat instance; its factory builds oracles over
	// the whole ground set.
	Global core.Instance
	// BuildShard builds an oracle factory for the sub-utility restricted
	// to the given sensors and targets (both ascending global IDs).
	// Local sensor u of the returned factory's ground set corresponds to
	// global sensor sensors[u]. Cross edges to targets outside the list
	// must be dropped — that loss is what the correction sweep repairs.
	BuildShard func(sensors, targets []int) (core.OracleFactory, error)
}

// Options tunes Plan.
type Options struct {
	// Shards is the requested shard count k; <= 0 selects
	// runtime.NumCPU(), mirroring the parallel.Workers convention. The
	// effective count is clamped to the populated cut geometry and
	// reported in Result.EffectiveShards.
	Shards int
	// Workers bounds the goroutines planning shards concurrently
	// (<= 0 selects NumCPU).
	Workers int
	// MaxRounds bounds the border-correction sweep: 0 selects the
	// default (4), negative disables the sweep entirely.
	MaxRounds int
	// Lazy selects the CELF lazy engine (LazyGreedy /
	// LazyGreedyRemoval) instead of the cached eager Greedy, per shard
	// and for the k=1 global path alike.
	Lazy bool
}

// DefaultMaxRounds is the border-correction round bound when
// Options.MaxRounds is zero. The sweep converges (zero moves) after one
// or two rounds on every benchmarked deployment; the bound exists so a
// pathological tie structure cannot loop.
const DefaultMaxRounds = 4

// Result is a sharded plan with its quality accounting.
type Result struct {
	// Schedule is the final stitched schedule over the full ground set.
	Schedule *core.Schedule
	// RequestedShards is Options.Shards after the NumCPU normalization;
	// EffectiveShards is the shard count actually used after clamping to
	// the populated cut geometry.
	RequestedShards, EffectiveShards int
	// Interior and Halo count the sensor classification (Interior +
	// Halo == N). EffectiveShards == 1 means no cuts, hence Halo == 0.
	Interior, Halo int
	// Rounds and Moves summarize the border-correction sweep: rounds
	// executed and total sensor reassignments applied.
	Rounds, Moves int
	// UtilityBefore is the period utility of the merged per-shard plans
	// before the correction sweep; Utility is the final schedule's. Both
	// are evaluated with fresh oracles from Global.Factory, so they are
	// directly comparable to the global engines' PeriodUtility.
	UtilityBefore, Utility float64
	// Cuts holds the interior strip boundaries (ascending x), length
	// EffectiveShards-1.
	Cuts []float64
}
