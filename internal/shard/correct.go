package shard

import (
	"cool/internal/core"
	"cool/internal/submodular"
)

// correctionSweep repairs the cross-border utility the per-shard plans
// could not see: it materializes the merged global per-slot oracle
// state once (core.SlotOracles) and then re-argmaxes every halo sensor
// against it, round after round, until a round applies no move or the
// round budget runs out. Interior sensors are never touched — their
// whole footprint was visible to their shard's engine, so the global
// argmax structure around them is exactly what that engine optimized.
//
// Every accepted move strictly improves the schedule's period utility
// (ties favor the current slot), so the sweep is a monotone
// hill-climber: it terminates at a fixed point where no single halo
// reassignment helps, and UtilityBefore <= Utility always holds.
func correctionSweep(in core.Instance, mode core.Mode, assign []int, halo []int, maxRounds int) (rounds, moves int, err error) {
	if maxRounds <= 0 || len(halo) == 0 {
		return 0, 0, nil
	}
	oracles, err := core.SlotOracles(in, mode, assign)
	if err != nil {
		return 0, 0, err
	}
	for rounds < maxRounds {
		m := sweepOnce(oracles, mode, assign, halo)
		rounds++
		moves += m
		if m == 0 {
			break
		}
	}
	return rounds, moves, nil
}

// sweepOnce runs one correction round: every halo sensor, in ascending
// ID order, is lifted out of its slot and re-inserted at the argmax
// (placement: max marginal gain; removal: min marginal loss picks the
// passive slot). The deterministic order plus the strict-improvement
// move rule make the round a pure function of the oracle state, and the
// incremental Add/Remove repairs keep the per-round cost at
// O(halo · T · degree) with zero allocations on the CSR oracles — the
// alloc gate in alloc_test.go pins that.
func sweepOnce(oracles []submodular.RemovalOracle, mode core.Mode, assign []int, halo []int) int {
	moves := 0
	T := len(oracles)
	for _, v := range halo {
		old := assign[v]
		switch mode {
		case core.ModePlacement:
			// Lift v out of its active slot; its gain there (== the
			// utility just given up) is the bar to beat strictly.
			bestT, bestG := old, 0.0
			if old >= 0 {
				oracles[old].Remove(v)
				bestG = oracles[old].Gain(v)
			}
			for t := 0; t < T; t++ {
				if t == old {
					continue
				}
				if g := oracles[t].Gain(v); g > bestG {
					bestT, bestG = t, g
				}
			}
			if bestT >= 0 {
				oracles[bestT].Add(v)
			}
			if bestT != old {
				assign[v] = bestT
				moves++
			}
		case core.ModeRemoval:
			if old < 0 {
				// Always-active sensor (no passive slot): removing it
				// anywhere can only lose utility. Leave it alone.
				continue
			}
			// Re-insert v into its passive slot, then pick the slot
			// whose loss is strictly smallest to go passive in.
			oracles[old].Add(v)
			bestT, bestL := old, oracles[old].Loss(v)
			for t := 0; t < T; t++ {
				if t == old {
					continue
				}
				if l := oracles[t].Loss(v); l < bestL {
					bestT, bestL = t, l
				}
			}
			oracles[bestT].Remove(v)
			if bestT != old {
				assign[v] = bestT
				moves++
			}
		}
	}
	return moves
}
