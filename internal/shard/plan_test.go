package shard

import (
	"math"
	"runtime"
	"testing"

	"cool/internal/core"
	"cool/internal/energy"
)

// TestPlanK1BitIdentical pins the k = 1 contract: the sharded planner
// with one shard returns exactly the global engine's schedule, for both
// modes, both engines, and both utility families.
func TestPlanK1BitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		period energy.Period
		detect bool
		lazy   bool
	}{
		{"placement-detect-eager", placementPeriod(), true, false},
		{"placement-count-lazy", placementPeriod(), false, true},
		{"removal-detect-lazy", removalPeriod(), true, true},
		{"removal-count-eager", removalPeriod(), false, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := buildTestProblem(t, 42, 180, 90, 200, 200, 25, tc.period, tc.detect)
			res, err := Plan(d.p, Options{Shards: 1, Lazy: tc.lazy})
			if err != nil {
				t.Fatal(err)
			}
			want, err := runEngine(d.p.Global, core.ModeFor(tc.period), tc.lazy)
			if err != nil {
				t.Fatal(err)
			}
			got, exp := res.Schedule.Assignment(), want.Assignment()
			for v := range exp {
				if got[v] != exp[v] {
					t.Fatalf("sensor %d: sharded slot %d, global slot %d", v, got[v], exp[v])
				}
			}
			if res.EffectiveShards != 1 || res.Halo != 0 {
				t.Fatalf("k=1 result reports shards=%d halo=%d", res.EffectiveShards, res.Halo)
			}
			if res.Utility != want.PeriodUtility(d.p.Global.Factory) {
				t.Fatalf("k=1 utility %v != global %v", res.Utility, want.PeriodUtility(d.p.Global.Factory))
			}
		})
	}
}

// TestPlanShardedQuality runs real decompositions and checks the
// quality accounting: feasible schedules, the correction sweep never
// losing utility, and a small gap against the global greedy on a dense
// uniform field.
func TestPlanShardedQuality(t *testing.T) {
	for _, tc := range []struct {
		name   string
		period energy.Period
		detect bool
	}{
		{"placement-detect", placementPeriod(), true},
		{"removal-detect", removalPeriod(), true},
		{"placement-count", placementPeriod(), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := buildTestProblem(t, 7, 500, 250, 600, 150, 15, tc.period, tc.detect)
			global, err := core.Greedy(d.p.Global)
			if err != nil {
				t.Fatal(err)
			}
			gu := global.PeriodUtility(d.p.Global.Factory)
			for _, k := range []int{2, 4} {
				res, err := Plan(d.p, Options{Shards: k, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				if res.EffectiveShards < 2 {
					t.Fatalf("k=%d collapsed to %d shards", k, res.EffectiveShards)
				}
				if err := res.Schedule.CheckFeasible(tc.period); err != nil {
					t.Fatalf("k=%d: %v", k, err)
				}
				if res.Utility < res.UtilityBefore-1e-9 {
					t.Fatalf("k=%d: correction sweep lost utility: %v -> %v", k, res.UtilityBefore, res.Utility)
				}
				gap := (gu - res.Utility) / gu
				if gap > 0.05 {
					t.Fatalf("k=%d: utility gap %.2f%% vs global greedy (%.4f vs %.4f)",
						k, 100*gap, res.Utility, gu)
				}
				if res.Interior+res.Halo != len(d.p.Sensors) {
					t.Fatalf("k=%d: interior %d + halo %d != n %d", k, res.Interior, res.Halo, len(d.p.Sensors))
				}
				if len(res.Cuts) != res.EffectiveShards-1 {
					t.Fatalf("k=%d: %d cuts for %d shards", k, len(res.Cuts), res.EffectiveShards)
				}
			}
		})
	}
}

// TestPlanClamping covers the graceful-degradation satellite: requested
// shard counts beyond the populated geometry clamp down, and Shards
// <= 0 selects NumCPU, mirroring parallel.Workers.
func TestPlanClamping(t *testing.T) {
	d := buildTestProblem(t, 3, 120, 60, 100, 100, 30, placementPeriod(), true)
	res, err := Plan(d.p, Options{Shards: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestedShards != 1<<20 {
		t.Fatalf("requested %d, want the raw request %d", res.RequestedShards, 1<<20)
	}
	if res.EffectiveShards > 120 || res.EffectiveShards < 1 {
		t.Fatalf("effective shards %d out of range", res.EffectiveShards)
	}
	if err := res.Schedule.CheckFeasible(placementPeriod()); err != nil {
		t.Fatal(err)
	}

	res, err = Plan(d.p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestedShards != runtime.NumCPU() && res.RequestedShards != 120 {
		t.Fatalf("Shards=0 requested %d, want NumCPU=%d (or the n clamp)", res.RequestedShards, runtime.NumCPU())
	}

	// A single-column deployment cannot be cut: even k=8 degrades to the
	// global engine bit-identically.
	narrow := buildTestProblem(t, 5, 60, 30, 1e-6, 300, 10, placementPeriod(), true)
	res, err = Plan(narrow.p, Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveShards != 1 {
		t.Fatalf("single-column field produced %d shards", res.EffectiveShards)
	}
	want, err := core.Greedy(narrow.p.Global)
	if err != nil {
		t.Fatal(err)
	}
	got, exp := res.Schedule.Assignment(), want.Assignment()
	for v := range exp {
		if got[v] != exp[v] {
			t.Fatalf("degraded plan differs from global at sensor %d", v)
		}
	}
}

// TestPlanMaxRounds pins the sweep budget semantics: negative disables
// (Rounds == 0, Utility == UtilityBefore), zero selects the default.
func TestPlanMaxRounds(t *testing.T) {
	d := buildTestProblem(t, 9, 300, 150, 400, 120, 14, placementPeriod(), true)
	off, err := Plan(d.p, Options{Shards: 4, MaxRounds: -1})
	if err != nil {
		t.Fatal(err)
	}
	if off.Rounds != 0 || off.Moves != 0 {
		t.Fatalf("disabled sweep ran: rounds=%d moves=%d", off.Rounds, off.Moves)
	}
	if off.Utility != off.UtilityBefore {
		t.Fatalf("disabled sweep changed utility: %v -> %v", off.UtilityBefore, off.Utility)
	}
	on, err := Plan(d.p, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if on.Rounds < 1 || on.Rounds > DefaultMaxRounds {
		t.Fatalf("default sweep rounds %d outside [1, %d]", on.Rounds, DefaultMaxRounds)
	}
	if on.Utility+1e-12 < off.Utility {
		t.Fatalf("sweep made things worse: %v < %v", on.Utility, off.Utility)
	}
}

// TestPlanValidation covers the error paths.
func TestPlanValidation(t *testing.T) {
	if _, err := Plan(nil, Options{}); err == nil {
		t.Fatal("nil problem accepted")
	}
	d := buildTestProblem(t, 1, 50, 25, 100, 100, 10, placementPeriod(), true)

	short := *d.p
	short.Sensors = short.Sensors[:10]
	if _, err := Plan(&short, Options{Shards: 2}); err == nil {
		t.Fatal("mismatched sensor geometry accepted")
	}

	wrongPeriod := *d.p
	wrongPeriod.Period = removalPeriod()
	if _, err := Plan(&wrongPeriod, Options{Shards: 2}); err == nil {
		t.Fatal("period mismatch accepted")
	}

	noBuild := *d.p
	noBuild.BuildShard = nil
	if _, err := Plan(&noBuild, Options{Shards: 4}); err == nil {
		t.Fatal("nil BuildShard accepted for a real decomposition")
	}
	// ... but k=1 never needs it.
	if _, err := Plan(&noBuild, Options{Shards: 1}); err != nil {
		t.Fatalf("k=1 should not need BuildShard: %v", err)
	}
}

// TestCorrectionSweepConverges checks the fixed-point property
// directly: once a sweep reports zero moves, another round still
// reports zero (the state is a genuine local optimum over halo
// reassignments), and assignments remain feasible slots.
func TestCorrectionSweepConverges(t *testing.T) {
	d := buildTestProblem(t, 21, 400, 200, 500, 130, 16, removalPeriod(), true)
	pt := newPartition(d.p, 4)
	if pt.shards() < 2 {
		t.Skip("geometry degenerated")
	}
	res, err := Plan(d.p, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	assign := res.Schedule.Assignment()
	oracles, err := core.SlotOracles(d.p.Global, core.ModeFor(d.p.Period), assign)
	if err != nil {
		t.Fatal(err)
	}
	if m := sweepOnce(oracles, core.ModeFor(d.p.Period), assign, pt.haloList); m != 0 {
		t.Fatalf("post-Plan state not a fixed point: %d further moves", m)
	}
	T := d.p.Period.Slots()
	for v, slot := range assign {
		if slot < -1 || slot >= T {
			t.Fatalf("sensor %d assigned out-of-range slot %d", v, slot)
		}
	}
	if math.IsNaN(res.Utility) {
		t.Fatal("NaN utility")
	}
}
