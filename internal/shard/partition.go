package shard

import (
	"math"

	"cool/internal/geometry/grid"
)

// cutsFor chooses up to k-1 vertical cut coordinates for a population
// of anchored items, snapped to grid-cell column boundaries: the column
// histogram of the anchors is split at the k-quantiles, each cut placed
// on the left boundary of the first column that reaches the quantile.
// Cuts that would produce an empty strip (duplicate boundaries, or a
// quantile already saturated by earlier columns) are dropped, so every
// resulting strip holds at least one item — the graceful degradation
// that clamps k > occupied-columns down to the populated geometry.
// Non-finite anchors sit in the grid's overflow bucket and are homed to
// the last strip by homeOf; they never influence cut placement.
func cutsFor(ix *grid.Index, xs []float64, k int) []float64 {
	if k <= 1 || ix.Len() == 0 {
		return nil
	}
	cols := ix.Columns()
	hist := make([]int, cols)
	finite := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		hist[ix.ColumnOf(x)]++
		finite++
	}
	if finite == 0 {
		return nil
	}
	// prefix[c] = items in columns [0, c).
	prefix := make([]int, cols+1)
	for c := 0; c < cols; c++ {
		prefix[c+1] = prefix[c] + hist[c]
	}
	cuts := make([]float64, 0, k-1)
	lastCol := 0
	for s := 1; s < k; s++ {
		// Smallest column boundary c beyond the previous cut with
		// prefix[c] >= s·n/k *and* items strictly between the cuts —
		// the second condition skips runs of empty columns that would
		// otherwise become empty strips.
		quota := (s*finite + k - 1) / k
		c := lastCol + 1
		for c < cols && (prefix[c] < quota || prefix[c] == prefix[lastCol]) {
			c++
		}
		// A boundary at the field edge (or with nothing to its right)
		// would leave the final strip empty, and no later quantile can
		// do better: stop.
		if c >= cols || prefix[c] >= finite {
			break
		}
		cuts = append(cuts, ix.ColumnLeft(c))
		lastCol = c
	}
	return cuts
}

// homeOf returns the strip index of an x coordinate under the ascending
// cut list: strip s spans [cuts[s-1], cuts[s]) with open ends at the
// field borders. NaN compares false against every cut and homes to the
// last strip, which keeps degenerate geometry inside one shard instead
// of erroring.
func homeOf(cuts []float64, x float64) int {
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if x < cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// crossesCut reports whether the Chebyshev footprint [x−reach, x+reach]
// contains any cut — the halo criterion. Non-finite geometry is
// conservatively halo: it cannot be proven interior.
func crossesCut(cuts []float64, x, reach float64) bool {
	if len(cuts) == 0 {
		return false
	}
	if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(reach) || math.IsInf(reach, 0) {
		return true
	}
	if reach < 0 {
		reach = 0
	}
	return homeOf(cuts, x-reach) != homeOf(cuts, x+reach)
}

// partition is the computed shard decomposition of a Problem.
type partition struct {
	cuts []float64
	// homeSensor[v] / homeTarget[j] are strip indices.
	homeSensor, homeTarget []int
	// shardSensors[s] / shardTargets[s] list the strip's members in
	// ascending global ID order.
	shardSensors, shardTargets [][]int
	// halo[v] marks sensors whose footprint crosses a cut; haloList is
	// the ascending ID list of them.
	halo     []bool
	haloList []int
}

// newPartition cuts the problem into at most k strips. The grid index
// is built over the sensor anchors with their footprint reaches, so the
// cut lines inherit the grid's cell geometry: a cell side is at least
// the maximum reach, hence an interior sensor is at least one full cell
// away from every cut.
func newPartition(p *Problem, k int) *partition {
	items := make([]grid.Item, len(p.Sensors))
	xs := make([]float64, len(p.Sensors))
	for v, s := range p.Sensors {
		items[v] = grid.Item{Pos: grid.Point{X: s.X, Y: s.Y}, Reach: s.Reach}
		xs[v] = s.X
	}
	ix := grid.Build(items)
	pt := &partition{cuts: cutsFor(ix, xs, k)}
	kEff := len(pt.cuts) + 1
	pt.homeSensor = make([]int, len(p.Sensors))
	pt.homeTarget = make([]int, len(p.Targets))
	pt.shardSensors = make([][]int, kEff)
	pt.shardTargets = make([][]int, kEff)
	pt.halo = make([]bool, len(p.Sensors))
	for v, s := range p.Sensors {
		home := homeOf(pt.cuts, s.X)
		pt.homeSensor[v] = home
		pt.shardSensors[home] = append(pt.shardSensors[home], v)
		if crossesCut(pt.cuts, s.X, s.Reach) {
			pt.halo[v] = true
			pt.haloList = append(pt.haloList, v)
		}
	}
	for j, tg := range p.Targets {
		home := homeOf(pt.cuts, tg.X)
		pt.homeTarget[j] = home
		pt.shardTargets[home] = append(pt.shardTargets[home], j)
	}
	return pt
}

// shards returns the effective strip count.
func (pt *partition) shards() int { return len(pt.shardSensors) }
