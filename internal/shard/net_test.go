package shard

import (
	"fmt"
	"sort"
	"testing"

	"cool/internal/geometry"
	"cool/internal/netsim"
	"cool/internal/stats"
)

// netFleet lays nodes on a jittered grid spanning several radio ranges
// so the cut geometry produces genuine cross-border links.
func netFleet(seed uint64, n int, width, height, radio float64) []netsim.NodeSpec {
	rng := stats.NewRNG(seed)
	specs := make([]netsim.NodeSpec, n)
	for i := range specs {
		specs[i] = netsim.NodeSpec{
			ID:    netsim.NodeID(i),
			Pos:   geometry.Point{X: rng.Float64() * width, Y: rng.Float64() * height},
			Radio: radio,
		}
	}
	return specs
}

// traceKey normalizes one tick's deliveries at one receiver: the sorted
// sender list. Within a (tick, receiver) bucket the sharded core may
// enqueue in a different order than the global core (local broadcasts
// flush before foreign replays), so equivalence is defined up to that
// order.
func traceKey(msgs []netsim.Message) string {
	froms := make([]int, len(msgs))
	for i, m := range msgs {
		froms[i] = int(m.From)
	}
	sort.Ints(froms)
	return fmt.Sprint(froms)
}

// TestNetK1FullyIdentical pins the strongest contract: with one shard
// the Net is the flat core — identical trace, counters, and RNG draws
// even with loss and delay jitter.
func TestNetK1FullyIdentical(t *testing.T) {
	specs := netFleet(5, 150, 300, 100, 25)
	sharded, err := NewNet(specs, NetOptions{Shards: 1, Loss: 0.3, MinDelay: 1, MaxDelay: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if sharded.EffectiveShards() != 1 {
		t.Fatalf("got %d shards, want 1", sharded.EffectiveShards())
	}
	flat, err := netsim.NewNetwork(netsim.WithLoss(0.3), netsim.WithDelay(1, 3), netsim.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.AddNodes(specs); err != nil {
		t.Fatal(err)
	}
	var bufA, bufB []netsim.Message
	for tick := 0; tick < 12; tick++ {
		for i := 0; i < len(specs); i += 7 {
			id := specs[i].ID
			if _, err := sharded.Batch(id, tick); err != nil {
				t.Fatal(err)
			}
			if _, err := flat.Batch(id, tick); err != nil {
				t.Fatal(err)
			}
		}
		sharded.Step()
		flat.Step()
		for _, s := range specs {
			bufA, _ = sharded.ReceiveInto(s.ID, bufA)
			bufB, _ = flat.ReceiveInto(s.ID, bufB)
			if len(bufA) != len(bufB) {
				t.Fatalf("tick %d node %d: %d vs %d deliveries", tick, s.ID, len(bufA), len(bufB))
			}
			for i := range bufA {
				if bufA[i] != bufB[i] {
					t.Fatalf("tick %d node %d msg %d: %+v vs %+v", tick, s.ID, i, bufA[i], bufB[i])
				}
			}
		}
	}
	as, ad, ap := sharded.Stats()
	bs, bd, bp := flat.Stats()
	if as != bs || ad != bd || ap != bp {
		t.Fatalf("stats diverge: sharded (%d,%d,%d) flat (%d,%d,%d)", as, ad, ap, bs, bd, bp)
	}
}

// TestNetShardedTraceIdentical checks the k > 1 contract against the
// reference implementation on a lossless fixed-delay medium: per-(tick,
// receiver) delivery sets and the summed counters must match exactly,
// including broadcasts whose radio disk straddles the cuts and down
// nodes on both sides of a border.
func TestNetShardedTraceIdentical(t *testing.T) {
	for _, k := range []int{2, 4, 7} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			specs := netFleet(uint64(100+k), 220, 500, 80, 30)
			sharded, err := NewNet(specs, NetOptions{Shards: k, MinDelay: 2, MaxDelay: 2, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if sharded.EffectiveShards() < 2 {
				t.Fatalf("decomposition collapsed to %d shards", sharded.EffectiveShards())
			}
			ref, err := netsim.NewReference(netsim.Config{MinDelay: 2, MaxDelay: 2, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range specs {
				if err := ref.AddNode(s.ID, s.Pos, s.Radio); err != nil {
					t.Fatal(err)
				}
			}
			// Fail a few nodes up front (tick-boundary transitions, per
			// the documented contract).
			for _, down := range []int{3, 50, 120} {
				if err := sharded.SetDown(netsim.NodeID(down), true); err != nil {
					t.Fatal(err)
				}
				if err := ref.SetDown(netsim.NodeID(down), true); err != nil {
					t.Fatal(err)
				}
			}
			var bufA []netsim.Message
			for tick := 0; tick < 10; tick++ {
				for i := 0; i < len(specs); i += 3 {
					id := specs[i].ID
					if _, err := sharded.Batch(id, tick); err != nil {
						t.Fatal(err)
					}
					// Reference Broadcast errors on a down sender; the
					// sharded Batch reports 0 packets instead.
					if !ref.IsDown(id) {
						if err := ref.Broadcast(id, tick); err != nil {
							t.Fatal(err)
						}
					}
				}
				sharded.Step()
				ref.Step()
				for _, s := range specs {
					bufA, _ = sharded.ReceiveInto(s.ID, bufA)
					bufB, err := ref.Receive(s.ID)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := traceKey(bufA), traceKey(bufB); got != want {
						t.Fatalf("tick %d node %d: senders %s vs reference %s", tick, s.ID, got, want)
					}
					for _, m := range bufA {
						if m.DeliveredAt != m.SentAt+2 || m.DeliveredAt != tick+1 {
							t.Fatalf("tick %d node %d: bad timestamps %+v", tick, s.ID, m)
						}
					}
				}
			}
			as, ad, ap := sharded.Stats()
			bs, bd, bp := ref.Stats()
			if as != bs || ad != bd || ap != bp {
				t.Fatalf("stats diverge: sharded (%d,%d,%d) reference (%d,%d,%d)", as, ad, ap, bs, bd, bp)
			}
		})
	}
}

// TestNetRouting covers the bookkeeping API: unknown nodes error,
// down state routes to the home partition, clamping degrades k.
func TestNetRouting(t *testing.T) {
	specs := netFleet(1, 40, 200, 50, 20)
	n, err := NewNet(specs, NetOptions{Shards: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Batch(netsim.NodeID(999), "x"); err == nil {
		t.Fatal("unknown sender accepted")
	}
	if _, err := n.ReceiveInto(netsim.NodeID(999), nil); err == nil {
		t.Fatal("unknown receiver accepted")
	}
	if err := n.SetDown(netsim.NodeID(999), true); err == nil {
		t.Fatal("unknown node SetDown accepted")
	}
	if err := n.SetDown(specs[4].ID, true); err != nil {
		t.Fatal(err)
	}
	if !n.IsDown(specs[4].ID) {
		t.Fatal("down state lost")
	}
	if sent, err := n.Batch(specs[4].ID, "x"); err != nil || sent != 0 {
		t.Fatalf("down sender: sent=%d err=%v, want 0, nil", sent, err)
	}
	if n.NumNodes() != 40 {
		t.Fatalf("NumNodes = %d", n.NumNodes())
	}
	if got := len(n.Cuts()); got != n.EffectiveShards()-1 {
		t.Fatalf("%d cuts for %d shards", got, n.EffectiveShards())
	}

	// More shards than nodes: clamped, still functional.
	tiny, err := NewNet(specs[:3], NetOptions{Shards: 64, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tiny.EffectiveShards() > 3 {
		t.Fatalf("tiny fleet got %d shards", tiny.EffectiveShards())
	}
	if _, err := NewNet(nil, NetOptions{Shards: 4}); err != nil {
		t.Fatalf("empty fleet rejected: %v", err)
	}
	dup := []netsim.NodeSpec{specs[0], specs[0]}
	if _, err := NewNet(dup, NetOptions{Shards: 1}); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}
