package shard

import (
	"math"
	"testing"

	"cool/internal/core"
	"cool/internal/energy"
	"cool/internal/stats"
	"cool/internal/submodular"
)

// testDeployment is a random geometric coverage instance with the
// brute-force incidence, wired into a shard Problem with a remapping
// BuildShard closure — the same construction pattern the root facade
// uses, minus the wsn dependency (internal/shard must stay below wsn in
// the layering).
type testDeployment struct {
	p        *Problem
	radius   float64
	coverers [][]int // coverers[j]: ascending sensor IDs covering target j
	detect   bool
}

// prob is the detection probability of sensor v at target j, a pure
// function of the geometry so the global and per-shard utilities agree
// bit-for-bit on shared (sensor, target) pairs.
func (d *testDeployment) prob(v, j int) float64 {
	s, t := d.p.Sensors[v], d.p.Targets[j]
	dist := math.Hypot(s.X-t.X, s.Y-t.Y)
	return 0.25 + 0.7*(1-dist/(d.radius*1.0001))
}

// factory builds the oracle factory restricted to the given ascending
// global sensor and target ID lists (the full lists give the global
// factory).
func (d *testDeployment) factory(sensors, targets []int) (core.OracleFactory, error) {
	local := make([]int, len(d.p.Sensors))
	for i := range local {
		local[i] = -1
	}
	for u, v := range sensors {
		local[v] = u
	}
	if d.detect {
		tl := make([]submodular.DetectionTarget, 0, len(targets))
		for _, j := range targets {
			probs := make(map[int]float64)
			for _, v := range d.coverers[j] {
				if local[v] >= 0 {
					probs[local[v]] = d.prob(v, j)
				}
			}
			tl = append(tl, submodular.DetectionTarget{Weight: 1, Probs: probs})
		}
		u, err := submodular.NewDetectionUtility(len(sensors), tl)
		if err != nil {
			return nil, err
		}
		return func() submodular.RemovalOracle { return u.Oracle() }, nil
	}
	items := make([]submodular.CoverageItem, 0, len(targets))
	for _, j := range targets {
		var covered []int
		for _, v := range d.coverers[j] {
			if local[v] >= 0 {
				covered = append(covered, local[v])
			}
		}
		if len(covered) == 0 {
			continue
		}
		items = append(items, submodular.CoverageItem{Value: 1, CoveredBy: covered})
	}
	u, err := submodular.NewCoverageUtility(len(sensors), items)
	if err != nil {
		return nil, err
	}
	return func() submodular.RemovalOracle { return u.Oracle() }, nil
}

// buildTestProblem places n sensors and m targets uniformly in a
// width×height field with disk footprints of the given radius.
func buildTestProblem(tb testing.TB, seed uint64, n, m int, width, height, radius float64,
	period energy.Period, detect bool) *testDeployment {
	tb.Helper()
	rng := stats.NewRNG(seed)
	d := &testDeployment{radius: radius, detect: detect}
	p := &Problem{
		Sensors: make([]SensorGeom, n),
		Targets: make([]TargetGeom, m),
		Period:  period,
	}
	d.p = p
	for v := range p.Sensors {
		p.Sensors[v] = SensorGeom{X: rng.Float64() * width, Y: rng.Float64() * height, Reach: radius}
	}
	for j := range p.Targets {
		p.Targets[j] = TargetGeom{X: rng.Float64() * width, Y: rng.Float64() * height}
	}
	d.coverers = make([][]int, m)
	for j, tg := range p.Targets {
		for v, s := range p.Sensors {
			if math.Hypot(s.X-tg.X, s.Y-tg.Y) <= radius {
				d.coverers[j] = append(d.coverers[j], v)
			}
		}
	}
	factory, err := d.factory(allIDs(n), allIDs(m))
	if err != nil {
		tb.Fatal(err)
	}
	p.Global = core.Instance{N: n, Period: period, Factory: factory}
	p.BuildShard = d.factory
	return d
}

func allIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// periods used across the tests: placement (ρ = 3 ≥ 1) and removal
// (ρ = 1/3 ≤ 1).
func placementPeriod() energy.Period { return energy.Period{ActiveSlots: 1, PassiveSlots: 3} }
func removalPeriod() energy.Period   { return energy.Period{ActiveSlots: 3, PassiveSlots: 1} }
