package shard

import (
	"math"
	"testing"

	"cool/internal/geometry/grid"
)

// TestHomeOfAndCrossesCut pins the strip arithmetic: half-open strips
// [cut, next), NaN homed to the last strip, and the halo criterion as a
// footprint-interval test.
func TestHomeOfAndCrossesCut(t *testing.T) {
	cuts := []float64{10, 20}
	cases := []struct {
		x    float64
		want int
	}{
		{5, 0}, {9.999, 0}, {10, 1}, {15, 1}, {20, 2}, {25, 2},
		{math.Inf(-1), 0}, {math.Inf(1), 2}, {math.NaN(), 2},
	}
	for _, c := range cases {
		if got := homeOf(cuts, c.x); got != c.want {
			t.Errorf("homeOf(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if crossesCut(cuts, 5, 1) {
		t.Error("interior footprint flagged halo")
	}
	if !crossesCut(cuts, 9.5, 1) {
		t.Error("footprint spanning cut 10 not flagged halo")
	}
	if !crossesCut(cuts, math.NaN(), 1) || !crossesCut(cuts, 5, math.Inf(1)) {
		t.Error("non-finite geometry must be conservatively halo")
	}
	if crossesCut(nil, 9.5, 100) {
		t.Error("no cuts, no halo")
	}
}

// TestCutsForBalance checks the quantile cuts on a uniform population:
// ascending cuts, every strip non-empty, and reasonable balance.
func TestCutsForBalance(t *testing.T) {
	const n, k = 4000, 8
	items := make([]grid.Item, n)
	xs := make([]float64, n)
	for i := range items {
		x := float64(i) / float64(n) * 1000
		items[i] = grid.Item{Pos: grid.Point{X: x, Y: float64(i % 50)}, Reach: 2}
		xs[i] = x
	}
	cuts := cutsFor(grid.Build(items), xs, k)
	if len(cuts) == 0 || len(cuts) > k-1 {
		t.Fatalf("got %d cuts, want 1..%d", len(cuts), k-1)
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly ascending: %v", cuts)
		}
	}
	counts := make([]int, len(cuts)+1)
	for _, x := range xs {
		counts[homeOf(cuts, x)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("strip %d empty: %v", s, counts)
		}
		// Quantile cuts snapped to cell boundaries: allow generous slack
		// around the ideal n/k.
		if c > 3*n/k {
			t.Fatalf("strip %d holds %d of %d items — badly unbalanced: %v", s, c, n, counts)
		}
	}
}

// TestCutsForDegenerate covers the clamping paths: a single occupied
// column, empty interior columns, and k larger than the population.
func TestCutsForDegenerate(t *testing.T) {
	// All anchors identical: no cut can separate them.
	same := make([]grid.Item, 10)
	sameXs := make([]float64, 10)
	for i := range same {
		same[i] = grid.Item{Pos: grid.Point{X: 5, Y: float64(i)}, Reach: 1}
		sameXs[i] = 5
	}
	if cuts := cutsFor(grid.Build(same), sameXs, 4); len(cuts) != 0 {
		t.Fatalf("identical anchors produced cuts %v", cuts)
	}

	// Two far clusters with a wide empty gap: at most one populated
	// boundary exists, and no strip may come out empty no matter how
	// large k is.
	var items []grid.Item
	var xs []float64
	for i := 0; i < 10; i++ {
		for _, x := range []float64{0.5, 999.5} {
			items = append(items, grid.Item{Pos: grid.Point{X: x, Y: float64(i)}, Reach: 1})
			xs = append(xs, x)
		}
	}
	cuts := cutsFor(grid.Build(items), xs, 16)
	if len(cuts) > 1 {
		t.Fatalf("two clusters produced %d cuts %v, want at most 1", len(cuts), cuts)
	}
	counts := make([]int, len(cuts)+1)
	for _, x := range xs {
		counts[homeOf(cuts, x)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("strip %d empty with cuts %v", s, cuts)
		}
	}
}

// TestPartitionSoundness verifies the invariant the whole decomposition
// rests on: a sensor covering a target homed in a different strip must
// be classified halo. Interior sensors' coverage is entirely local.
func TestPartitionSoundness(t *testing.T) {
	d := buildTestProblem(t, 11, 600, 300, 400, 100, 12, placementPeriod(), true)
	pt := newPartition(d.p, 6)
	if pt.shards() < 2 {
		t.Fatalf("expected a real decomposition, got %d shards", pt.shards())
	}
	if len(pt.haloList) == 0 || len(pt.haloList) == len(d.p.Sensors) {
		t.Fatalf("degenerate halo classification: %d of %d", len(pt.haloList), len(d.p.Sensors))
	}
	for j, cov := range d.coverers {
		for _, v := range cov {
			if pt.homeSensor[v] != pt.homeTarget[j] && !pt.halo[v] {
				t.Fatalf("sensor %d (strip %d) covers target %d (strip %d) but is not halo",
					v, pt.homeSensor[v], j, pt.homeTarget[j])
			}
		}
	}
	// Strips partition the ground set.
	seen := 0
	for s := 0; s < pt.shards(); s++ {
		seen += len(pt.shardSensors[s])
		if len(pt.shardSensors[s]) == 0 {
			t.Fatalf("strip %d has no sensors", s)
		}
	}
	if seen != len(d.p.Sensors) {
		t.Fatalf("strips hold %d sensors, deployment has %d", seen, len(d.p.Sensors))
	}
}
