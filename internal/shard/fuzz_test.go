package shard

import (
	"fmt"
	"testing"

	"cool/internal/core"
	"cool/internal/netsim"
	"cool/internal/stats"
)

// FuzzShardEquivalence drives randomized deployments through the whole
// sharded stack and checks every cross-engine contract at once:
//
//   - k = 1 plans are bit-identical to the global engine (both the
//     eager and the lazy path, both modes, both utility families);
//   - k > 1 plans are feasible, the correction sweep never loses
//     utility, and the gap against the global greedy stays under a
//     loose structural bound;
//   - the sharded radio network's delivery trace matches the reference
//     implementation per (tick, receiver) on a lossless fixed-delay
//     medium, dead nodes included, and the packet counters sum exactly.
func FuzzShardEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(20), uint8(3), false, true, uint8(0))
	f.Add(uint64(7), uint8(90), uint8(45), uint8(5), true, false, uint8(3))
	f.Add(uint64(42), uint8(60), uint8(10), uint8(8), false, false, uint8(7))
	f.Add(uint64(1234), uint8(120), uint8(60), uint8(2), true, true, uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, mRaw, kRaw uint8, removal, detect bool, deadRaw uint8) {
		n := 8 + int(nRaw)%140
		m := 4 + int(mRaw)%70
		k := 1 + int(kRaw)%8
		period := placementPeriod()
		if removal {
			period = removalPeriod()
		}
		d := buildTestProblem(t, seed, n, m, 400, 120, 14, period, detect)
		mode := core.ModeFor(period)

		// k = 1: bit-identity against the global engine.
		for _, lazy := range []bool{false, true} {
			res, err := Plan(d.p, Options{Shards: 1, Lazy: lazy})
			if err != nil {
				t.Fatal(err)
			}
			want, err := runEngine(d.p.Global, mode, lazy)
			if err != nil {
				t.Fatal(err)
			}
			got, exp := res.Schedule.Assignment(), want.Assignment()
			for v := range exp {
				if got[v] != exp[v] {
					t.Fatalf("k=1 lazy=%v: sensor %d slot %d != global %d", lazy, v, got[v], exp[v])
				}
			}
		}

		// k > 1: feasibility, monotone sweep, bounded gap.
		if k > 1 {
			res, err := Plan(d.p, Options{Shards: k})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Schedule.CheckFeasible(period); err != nil {
				t.Fatal(err)
			}
			if res.Utility < res.UtilityBefore-1e-9 {
				t.Fatalf("sweep lost utility: %v -> %v", res.UtilityBefore, res.Utility)
			}
			global, err := core.Greedy(d.p.Global)
			if err != nil {
				t.Fatal(err)
			}
			gu := global.PeriodUtility(d.p.Global.Factory)
			if gu > 0 && res.Utility < gu*0.5 {
				t.Fatalf("gap beyond structural bound: sharded %v vs global %v (k=%d eff=%d)",
					res.Utility, gu, k, res.EffectiveShards)
			}
		}

		// Radio network trace equivalence on a small fleet derived from
		// the same seed.
		nn := 10 + int(nRaw)%60
		specs := netFleet(stats.SplitMix64(seed), nn, 300, 60, 22)
		sharded, err := NewNet(specs, NetOptions{Shards: k, MinDelay: 1, MaxDelay: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := netsim.NewReference(netsim.Config{MinDelay: 1, MaxDelay: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range specs {
			if err := ref.AddNode(s.ID, s.Pos, s.Radio); err != nil {
				t.Fatal(err)
			}
		}
		dead := int(deadRaw) % (nn / 2)
		for i := 0; i < dead; i++ {
			id := specs[(i*7)%nn].ID
			if err := sharded.SetDown(id, true); err != nil {
				t.Fatal(err)
			}
			if err := ref.SetDown(id, true); err != nil {
				t.Fatal(err)
			}
		}
		var buf []netsim.Message
		for tick := 0; tick < 4; tick++ {
			for i := 0; i < nn; i += 2 {
				id := specs[i].ID
				if _, err := sharded.Batch(id, tick); err != nil {
					t.Fatal(err)
				}
				if !ref.IsDown(id) {
					if err := ref.Broadcast(id, tick); err != nil {
						t.Fatal(err)
					}
				}
			}
			sharded.Step()
			ref.Step()
			for _, s := range specs {
				buf, _ = sharded.ReceiveInto(s.ID, buf)
				want, err := ref.Receive(s.ID)
				if err != nil {
					t.Fatal(err)
				}
				if got, exp := traceKey(buf), traceKey(want); got != exp {
					t.Fatalf("tick %d node %d: senders %s vs reference %s", tick, s.ID, got, exp)
				}
			}
		}
		as, ad, ap := sharded.Stats()
		bs, bd, bp := ref.Stats()
		if as != bs || ad != bd || ap != bp {
			t.Fatal(fmt.Sprintf("stats diverge: sharded (%d,%d,%d) reference (%d,%d,%d)", as, ad, ap, bs, bd, bp))
		}
	})
}
