package shard

import (
	"testing"

	"cool/internal/core"
	"cool/internal/netsim"
)

// TestSweepOnceSteadyStateAllocs pins the border-correction round at
// zero allocations: Gain/Loss scans and the Add/Remove repairs on the
// CSR oracles never touch the heap, so the sweep's cost is pure
// compute no matter how many rounds the budget allows.
func TestSweepOnceSteadyStateAllocs(t *testing.T) {
	for _, mode := range []core.Mode{core.ModePlacement, core.ModeRemoval} {
		period := placementPeriod()
		if mode == core.ModeRemoval {
			period = removalPeriod()
		}
		d := buildTestProblem(t, 31, 400, 200, 500, 120, 15, period, true)
		pt := newPartition(d.p, 4)
		if pt.shards() < 2 {
			t.Fatal("geometry degenerated")
		}
		res, err := Plan(d.p, Options{Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		assign := res.Schedule.Assignment()
		oracles, err := core.SlotOracles(d.p.Global, mode, assign)
		if err != nil {
			t.Fatal(err)
		}
		// Warm up once (the state is already a fixed point, so the round
		// exercises the full scan with zero moves).
		sweepOnce(oracles, mode, assign, pt.haloList)
		allocs := testing.AllocsPerRun(20, func() {
			sweepOnce(oracles, mode, assign, pt.haloList)
		})
		if allocs != 0 {
			t.Errorf("%v sweep round allocates %.1f times, want 0", mode, allocs)
		}
	}
}

// TestNetStepSteadyStateAllocs pins the per-tick boundary exchange at
// zero allocations with sequential workers: the cross-border queues,
// the netsim scratch buffers, and the ring buckets all retain capacity.
func TestNetStepSteadyStateAllocs(t *testing.T) {
	specs := netFleet(77, 300, 600, 80, 35)
	n, err := NewNet(specs, NetOptions{Shards: 4, Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n.EffectiveShards() < 2 {
		t.Fatal("decomposition collapsed")
	}
	payload := any("beacon")
	var buf []netsim.Message
	round := func() {
		for i := 0; i < len(specs); i += 5 {
			if _, err := n.Batch(specs[i].ID, payload); err != nil {
				t.Fatal(err)
			}
		}
		n.Step()
		for _, s := range specs {
			buf, _ = n.ReceiveInto(s.ID, buf)
		}
	}
	for i := 0; i < 5; i++ {
		round() // warm caches: queues, ring buckets, inboxes, grid scratch
	}
	if cap(buf) == 0 {
		buf = make([]netsim.Message, 0, 256)
	}
	allocs := testing.AllocsPerRun(30, round)
	if allocs != 0 {
		t.Errorf("sharded net round allocates %.1f times, want 0", allocs)
	}
}
