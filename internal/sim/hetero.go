package sim

import (
	"fmt"

	"cool/internal/core"
	"cool/internal/energy"
	"cool/internal/stats"
)

// HeterogeneousCharging gives every sensor its own deterministic
// charging period (extension E1: mixed panel counts, shading). It is
// incompatible with WeatherShift, which assumes a fleet-wide pattern.
type HeterogeneousCharging struct {
	// Periods holds one normalized charging period per sensor.
	Periods []energy.Period
}

var _ ChargingModel = HeterogeneousCharging{}

func (h HeterogeneousCharging) newBattery(v int) (*energy.Battery, error) {
	if v < 0 || v >= len(h.Periods) {
		return nil, fmt.Errorf("sim: no period for sensor %d (have %d)", v, len(h.Periods))
	}
	if err := h.Periods[v].Validate(); err != nil {
		return nil, fmt.Errorf("sim: sensor %d: %w", v, err)
	}
	return energy.NewBattery(1, DeterministicCharging{Period: h.Periods[v]}.rates())
}

func (h HeterogeneousCharging) slotRates(base energy.Rates, _ *stats.RNG) energy.Rates {
	return base
}

// HeteroSchedulePolicy follows a heterogeneous (per-sensor-period)
// schedule.
type HeteroSchedulePolicy struct {
	// Schedule is the hyperperiodic schedule to follow.
	Schedule *core.HeteroSchedule
}

var _ Policy = HeteroSchedulePolicy{}

// Activate implements Policy.
func (p HeteroSchedulePolicy) Activate(t int, _ []int) []int {
	return p.Schedule.ActiveAt(t)
}
