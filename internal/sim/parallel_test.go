package sim

import (
	"reflect"
	"testing"

	"cool/internal/stats"
	"cool/internal/submodular"
)

func monteCarloConfig(t *testing.T) Config {
	t.Helper()
	const n = 12
	u := singleTargetUtility(t, n, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, n, period, factory)
	return Config{
		NumSensors: n,
		Slots:      40,
		Policy:     SchedulePolicy{Schedule: sched},
		Charging: RandomCharging{
			Period:        period,
			EventRate:     1,
			EventDuration: 1,
		},
		Factory: factory,
		Targets: 1,
		Seed:    99,
	}
}

// TestRunParallelDeterministicAcrossWorkers is the simulation-side
// determinism test: every worker count produces an identical
// MonteCarloResult, including workers == 1 (the sequential
// counterpart).
func TestRunParallelDeterministicAcrossWorkers(t *testing.T) {
	cfg := monteCarloConfig(t)
	const reps = 6
	want, err := RunParallel(cfg, reps, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8, 0} {
		got, err := RunParallel(cfg, reps, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: result differs from sequential", w)
		}
	}
}

// TestRunParallelMatchesDirectRuns verifies replication i's summary is
// exactly what a direct sim.Run of the derived-seed configuration
// returns.
func TestRunParallelMatchesDirectRuns(t *testing.T) {
	cfg := monteCarloConfig(t)
	const reps = 4
	mc, err := RunParallel(cfg, reps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Replications) != reps {
		t.Fatalf("got %d replications, want %d", len(mc.Replications), reps)
	}
	for i, rep := range mc.Replications {
		if rep.Index != i {
			t.Errorf("replication %d has index %d", i, rep.Index)
		}
		wantSeed := ReplicationSeed(cfg.Seed, i)
		if rep.Seed != wantSeed {
			t.Errorf("replication %d seed %d, want %d", i, rep.Seed, wantSeed)
		}
		c := cfg
		c.Seed = wantSeed
		direct, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TotalUtility != direct.TotalUtility ||
			rep.AverageUtility != direct.AverageUtility ||
			rep.ActivationsDenied != direct.ActivationsDenied {
			t.Errorf("replication %d summary %+v differs from direct run", i, rep)
		}
	}
}

func TestRunParallelSummaryAggregation(t *testing.T) {
	cfg := monteCarloConfig(t)
	mc, err := RunParallel(cfg, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if mc.AverageUtility.N != 5 || mc.TotalUtility.N != 5 {
		t.Errorf("summary N = %d/%d, want 5", mc.AverageUtility.N, mc.TotalUtility.N)
	}
	if mc.AverageUtility.Min > mc.AverageUtility.Mean ||
		mc.AverageUtility.Mean > mc.AverageUtility.Max {
		t.Errorf("inconsistent summary %+v", mc.AverageUtility)
	}
	if ci := mc.ConfidenceInterval95(); ci < 0 {
		t.Errorf("negative confidence interval %v", ci)
	}
	denied := 0
	for _, r := range mc.Replications {
		denied += r.ActivationsDenied
	}
	if denied != mc.ActivationsDenied {
		t.Errorf("denied total %d, sum of replications %d", mc.ActivationsDenied, denied)
	}
}

func TestRunParallelRejectsBadInput(t *testing.T) {
	cfg := monteCarloConfig(t)
	if _, err := RunParallel(cfg, 0, 2); err == nil {
		t.Error("zero replications accepted")
	}
	bad := cfg
	bad.NumSensors = 0
	if _, err := RunParallel(bad, 3, 2); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestReplicationSeedIsStatelessStream(t *testing.T) {
	const base = 12345
	seen := make(map[uint64]int)
	for i := 0; i < 64; i++ {
		s := ReplicationSeed(base, i)
		if s != stats.StreamSeed(base, uint64(i)) {
			t.Fatalf("ReplicationSeed(%d,%d) != stats.StreamSeed", base, i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between replications %d and %d", prev, i)
		}
		seen[s] = i
	}
}
