// Package sim executes time-slotted simulations of a solar-powered WSN
// under an activation policy: energy bookkeeping with the paper's
// three-state automaton (Section II-B), deterministic or random
// (Section V) charging, utility accounting per slot, and fault
// injection (node death, mid-run weather change).
package sim

import (
	"errors"
	"fmt"

	"cool/internal/core"
	"cool/internal/energy"
	"cool/internal/stats"
)

// Policy decides which sensors to activate at the start of each slot.
type Policy interface {
	// Activate returns the sensors to switch on at slot t. ready lists
	// the sensors currently able to activate (fully charged); the
	// simulator ignores requested sensors that are not ready.
	Activate(t int, ready []int) []int
}

// SchedulePolicy activates the sensors a precomputed periodic schedule
// names for each slot.
type SchedulePolicy struct {
	// Schedule is the periodic activation schedule to follow.
	Schedule *core.Schedule
}

var _ Policy = SchedulePolicy{}

// Activate implements Policy. It requests exactly the scheduled set;
// the simulator enforces energy feasibility and counts requests it has
// to deny (dead or insufficiently charged sensors).
func (p SchedulePolicy) Activate(t int, _ []int) []int {
	return p.Schedule.ActiveAt(t)
}

// AllReadyPolicy greedily activates every ready sensor every slot — the
// naive baseline that burns the whole network in the first slots of
// each period.
type AllReadyPolicy struct{}

var _ Policy = AllReadyPolicy{}

// Activate implements Policy.
func (AllReadyPolicy) Activate(_ int, ready []int) []int { return ready }

// ChargingModel produces per-sensor battery behaviour.
type ChargingModel interface {
	// newBattery builds the battery of sensor v.
	newBattery(v int) (*energy.Battery, error)
	// slotRates returns the effective (discharge, recharge) rates for
	// one sensor for one slot, letting stochastic models resample each
	// slot.
	slotRates(base energy.Rates, rng *stats.RNG) energy.Rates
}

// DeterministicCharging is the paper's base model: fixed μd and μr,
// derived from a normalized period (capacity 1; discharge drains a full
// battery in ActiveSlots ticks, recharge refills it in PassiveSlots).
type DeterministicCharging struct {
	// Period is the normalized charging period.
	Period energy.Period
}

var _ ChargingModel = DeterministicCharging{}

func (d DeterministicCharging) rates() energy.Rates {
	return energy.Rates{
		Discharge: 1 / float64(d.Period.ActiveSlots),
		Recharge:  1 / float64(d.Period.PassiveSlots),
	}
}

func (d DeterministicCharging) newBattery(int) (*energy.Battery, error) {
	if err := d.Period.Validate(); err != nil {
		return nil, err
	}
	return energy.NewBattery(1, d.rates())
}

func (d DeterministicCharging) slotRates(base energy.Rates, _ *stats.RNG) energy.Rates {
	return base
}

// RandomCharging is the Section-V model: events arrive at an active
// sensor as a Poisson process with rate EventRate per slot, each event
// keeps the sensor busy for an exponential duration with mean
// EventDuration slots, and the battery drains only while busy. The
// recharge time is normally distributed around the period's nominal
// value.
type RandomCharging struct {
	// Period gives the nominal (mean) charging pattern.
	Period energy.Period
	// EventRate is λa, mean event arrivals per slot (must be > 0).
	EventRate float64
	// EventDuration is λd, mean event duration in slots (must be > 0).
	EventDuration float64
	// RechargeStdFrac is the standard deviation of the recharge time as
	// a fraction of its mean (default 0.1).
	RechargeStdFrac float64
}

var _ ChargingModel = RandomCharging{}

// Validate reports whether the model parameters are usable.
func (r RandomCharging) Validate() error {
	if err := r.Period.Validate(); err != nil {
		return err
	}
	if !(r.EventRate > 0) {
		return fmt.Errorf("sim: non-positive event rate %v", r.EventRate)
	}
	if !(r.EventDuration > 0) {
		return fmt.Errorf("sim: non-positive event duration %v", r.EventDuration)
	}
	if r.RechargeStdFrac < 0 {
		return fmt.Errorf("sim: negative recharge std fraction %v", r.RechargeStdFrac)
	}
	return nil
}

func (r RandomCharging) newBattery(int) (*energy.Battery, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return energy.NewBattery(1, DeterministicCharging{Period: r.Period}.rates())
}

func (r RandomCharging) slotRates(base energy.Rates, rng *stats.RNG) energy.Rates {
	// Busy fraction of the slot: arrivals ~ Poisson(λa), each busy for
	// Exp(λd) slots, truncated at the slot boundary.
	busy := 0.0
	for i, k := 0, rng.Poisson(r.EventRate); i < k; i++ {
		busy += rng.Exponential(r.EventDuration)
	}
	if busy > 1 {
		busy = 1
	}
	// Keep the discharge strictly positive so the rates stay valid; a
	// slot with no events drains (essentially) nothing.
	const minBusy = 1e-6
	if busy < minBusy {
		busy = minBusy
	}
	stdFrac := r.RechargeStdFrac
	if stdFrac == 0 {
		stdFrac = 0.1
	}
	recharge := base.Recharge / clampPositive(rng.Normal(1, stdFrac))
	return energy.Rates{
		Discharge: base.Discharge * busy,
		Recharge:  recharge,
	}
}

func clampPositive(x float64) float64 {
	const floor = 0.05
	if x < floor {
		return floor
	}
	return x
}

// Fault injects a permanent node failure at a slot.
type Fault struct {
	// Sensor is the failing node.
	Sensor int
	// AtSlot is the first slot at which the node is dead.
	AtSlot int
}

// WeatherShift changes every battery's recharge rate from a slot
// onward, modelling the weather-dependent pattern switch the paper
// performs between days.
type WeatherShift struct {
	// AtSlot is the first slot with the new pattern.
	AtSlot int
	// NewPeriod is the charging period from AtSlot on.
	NewPeriod energy.Period
}

// Config describes one simulation run.
type Config struct {
	// NumSensors is the network size.
	NumSensors int
	// Slots is the working time ℒ in slots.
	Slots int
	// Policy picks activations each slot.
	Policy Policy
	// Charging is the charging model (deterministic by default if nil
	// and Period set via DeterministicCharging).
	Charging ChargingModel
	// Factory builds the per-slot utility oracle for accounting.
	Factory core.OracleFactory
	// Targets divides the per-slot utility in the averaged metric
	// (paper: average utility per target per slot); defaults to 1.
	Targets int
	// Faults lists permanent node failures to inject.
	Faults []Fault
	// Weather lists charging-pattern shifts to apply, in slot order.
	Weather []WeatherShift
	// Seed drives the stochastic charging model.
	Seed uint64
}

// SlotRecord is the per-slot outcome of a run.
type SlotRecord struct {
	// Slot is the slot index.
	Slot int
	// Active, Ready, Passive count sensors by state during the slot.
	Active, Ready, Passive int
	// Utility is U(S(t)) for the slot's actually-active set.
	Utility float64
}

// Result summarizes a run.
type Result struct {
	// PerSlot holds one record per simulated slot.
	PerSlot []SlotRecord
	// ActiveSets records the actually-activated sensors of each slot
	// (aligned with PerSlot) for post-hoc analysis such as event-driven
	// detection replay.
	ActiveSets [][]int
	// TotalUtility is Σ_t U(S(t)).
	TotalUtility float64
	// AverageUtility is TotalUtility / (slots · targets), the paper's
	// evaluation metric.
	AverageUtility float64
	// ActivationsDenied counts requested activations the energy state
	// vetoed (policy asked for a non-ready sensor).
	ActivationsDenied int
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.NumSensors <= 0 {
		return nil, fmt.Errorf("sim: non-positive sensor count %d", cfg.NumSensors)
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("sim: non-positive slot count %d", cfg.Slots)
	}
	if cfg.Policy == nil {
		return nil, errors.New("sim: nil policy")
	}
	if cfg.Charging == nil {
		return nil, errors.New("sim: nil charging model")
	}
	if cfg.Factory == nil {
		return nil, errors.New("sim: nil oracle factory")
	}
	targets := cfg.Targets
	if targets <= 0 {
		targets = 1
	}
	for _, f := range cfg.Faults {
		if f.Sensor < 0 || f.Sensor >= cfg.NumSensors {
			return nil, fmt.Errorf("sim: fault names sensor %d outside [0,%d)", f.Sensor, cfg.NumSensors)
		}
	}

	rng := stats.NewRNG(cfg.Seed)
	batteries := make([]*energy.Battery, cfg.NumSensors)
	baseRates := make([]energy.Rates, cfg.NumSensors)
	for i := range batteries {
		b, err := cfg.Charging.newBattery(i)
		if err != nil {
			return nil, err
		}
		batteries[i] = b
		baseRates[i] = b.Rates()
	}
	dead := make([]bool, cfg.NumSensors)
	deadAt := make(map[int][]int)
	for _, f := range cfg.Faults {
		deadAt[f.AtSlot] = append(deadAt[f.AtSlot], f.Sensor)
	}
	if _, hetero := cfg.Charging.(HeterogeneousCharging); hetero && len(cfg.Weather) > 0 {
		return nil, errors.New(
			"sim: WeatherShift assumes a fleet-wide pattern and cannot be combined with HeterogeneousCharging")
	}
	shiftAt := make(map[int]energy.Period)
	for _, w := range cfg.Weather {
		if err := w.NewPeriod.Validate(); err != nil {
			return nil, fmt.Errorf("sim: weather shift at slot %d: %w", w.AtSlot, err)
		}
		shiftAt[w.AtSlot] = w.NewPeriod
	}

	res := &Result{PerSlot: make([]SlotRecord, 0, cfg.Slots)}
	for t := 0; t < cfg.Slots; t++ {
		for _, s := range deadAt[t] {
			dead[s] = true
		}
		if p, ok := shiftAt[t]; ok {
			shifted := DeterministicCharging{Period: p}.rates()
			for v, b := range batteries {
				baseRates[v] = shifted
				if err := b.SetRates(shifted); err != nil {
					return nil, err
				}
			}
		}

		ready := make([]int, 0, cfg.NumSensors)
		for v, b := range batteries {
			if !dead[v] && b.CanSustainActive() {
				ready = append(ready, v)
			}
		}
		want := cfg.Policy.Activate(t, ready)
		wanted := make([]bool, cfg.NumSensors)
		for _, v := range want {
			if v < 0 || v >= cfg.NumSensors {
				return nil, fmt.Errorf("sim: policy activated sensor %d outside [0,%d)", v, cfg.NumSensors)
			}
			wanted[v] = true
		}

		// Drive every sensor's state for this slot: activate the wanted
		// ones that can sustain a slot, rest everything else (resting a
		// full battery is a no-op by the next tick).
		oracle := cfg.Factory()
		rec := SlotRecord{Slot: t}
		var activated []int
		for v, b := range batteries {
			if dead[v] {
				if wanted[v] {
					res.ActivationsDenied++
				}
				continue
			}
			if wanted[v] {
				if err := b.ForceActivate(); err != nil {
					res.ActivationsDenied++
					b.Rest()
					continue
				}
				oracle.Add(v)
				activated = append(activated, v)
				rec.Active++
			} else {
				b.Rest()
			}
		}
		rec.Utility = oracle.Value()
		res.ActiveSets = append(res.ActiveSets, activated)

		// Advance energy by one slot. Stochastic models resample each
		// sensor's effective rates.
		for v, b := range batteries {
			if dead[v] {
				continue
			}
			if err := b.SetRates(cfg.Charging.slotRates(baseRates[v], rng)); err != nil {
				return nil, fmt.Errorf("sim: slot %d sensor %d: %w", t, v, err)
			}
			switch b.Tick() {
			case energy.StateReady:
				rec.Ready++
			case energy.StatePassive:
				rec.Passive++
			}
		}
		res.PerSlot = append(res.PerSlot, rec)
		res.TotalUtility += rec.Utility
	}
	res.AverageUtility = res.TotalUtility / float64(cfg.Slots) / float64(targets)
	return res, nil
}
