package sim

import (
	"errors"
	"fmt"

	"cool/internal/stats"
)

// Event-driven validation: instead of scoring slots with the analytic
// utility, generate concrete events at targets and sample which active
// covering sensors actually detect them. The empirical detection rate
// must converge to the analytic average utility — this closes the loop
// between the paper's utility model (Section II-C) and an actual
// monitored world.

// EventConfig describes the event process and the detection ground
// truth for an event-driven run.
type EventConfig struct {
	// Targets is the number of targets m.
	Targets int
	// Coverers returns the sensors able to monitor a target (the
	// paper's V(O_j)).
	Coverers func(target int) []int
	// Prob returns the detection probability of a covering sensor for
	// a target.
	Prob func(sensor, target int) float64
	// EventsPerSlot is the expected number of events per target per
	// slot (events arrive as a Poisson process; 1 reproduces the
	// "one observation opportunity per slot" semantics of the utility).
	EventsPerSlot float64
}

// Validate reports whether the configuration is usable.
func (c EventConfig) Validate() error {
	if c.Targets <= 0 {
		return fmt.Errorf("sim: non-positive target count %d", c.Targets)
	}
	if c.Coverers == nil {
		return errors.New("sim: nil coverers function")
	}
	if c.Prob == nil {
		return errors.New("sim: nil probability function")
	}
	if !(c.EventsPerSlot > 0) {
		return fmt.Errorf("sim: non-positive event rate %v", c.EventsPerSlot)
	}
	return nil
}

// EventResult extends a simulation result with empirical detection
// statistics.
type EventResult struct {
	// Result is the underlying energy/utility simulation outcome.
	Result *Result
	// Events counts generated events.
	Events int
	// Detected counts events seen by at least one active covering
	// sensor.
	Detected int
}

// DetectionRate returns Detected/Events (0 when no events occurred).
func (r EventResult) DetectionRate() float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Detected) / float64(r.Events)
}

// RunWithEvents executes the simulation while generating events and
// sampling detections against the actually-active sensors of each
// slot. The returned empirical detection rate estimates the paper's
// average utility per target per slot (they coincide in expectation
// when EventsPerSlot events per target arrive each slot and the
// analytic utility uses the same coverage and probabilities).
func RunWithEvents(cfg Config, events EventConfig) (*EventResult, error) {
	if err := events.Validate(); err != nil {
		return nil, err
	}
	res, err := Run(cfg)
	if err != nil {
		return nil, err
	}
	// Replay the recorded active sets against a synthetic event stream.
	// A dedicated RNG keeps the event sampling independent of the
	// charging randomness (which consumed cfg.Seed).
	rng := stats.NewRNG(cfg.Seed ^ 0x9e3779b97f4a7c15)
	out := &EventResult{Result: res}
	activeAt := make([]map[int]bool, len(res.PerSlot))
	for i := range activeAt {
		activeAt[i] = make(map[int]bool, len(res.ActiveSets[i]))
		for _, v := range res.ActiveSets[i] {
			activeAt[i][v] = true
		}
	}
	for slot := range res.PerSlot {
		for target := 0; target < events.Targets; target++ {
			k := rng.Poisson(events.EventsPerSlot)
			for e := 0; e < k; e++ {
				out.Events++
				for _, v := range events.Coverers(target) {
					if !activeAt[slot][v] {
						continue
					}
					if rng.Bernoulli(events.Prob(v, target)) {
						out.Detected++
						break
					}
				}
			}
		}
	}
	return out, nil
}
