package sim

import (
	"cool/internal/core"
)

// OnlineGreedyPolicy implements the paper's first future-work item
// (Section VIII): activating partially recharged sensors. Instead of
// following a precomputed schedule that assumes full recharge between
// activations, it decides online each slot: among the sensors whose
// current charge can sustain one active slot (the simulator's ready
// set, which under partial-charge semantics includes partially
// recharged nodes), it greedily activates the highest-marginal-gain
// sensors up to a per-slot budget.
//
// The budget throttles consumption so the fleet is not burned in one
// slot; Budget = ⌈n/T⌉ matches the steady-state activation rate of a
// periodic schedule and is used when Budget ≤ 0.
type OnlineGreedyPolicy struct {
	// Factory builds the per-slot utility oracle used to rank sensors.
	Factory core.OracleFactory
	// Budget caps activations per slot (≤ 0 selects ⌈n/T⌉; see
	// DefaultBudget).
	Budget int
	// MinGain stops activating when the best remaining marginal gain
	// falls to or below this threshold (set 0 to use every budgeted
	// slot that still helps).
	MinGain float64
}

var _ Policy = OnlineGreedyPolicy{}

// DefaultBudget returns ⌈n/T⌉, the per-slot activation rate a periodic
// schedule sustains.
func DefaultBudget(n, periodSlots int) int {
	if periodSlots <= 0 {
		return n
	}
	return (n + periodSlots - 1) / periodSlots
}

// Activate implements Policy: pick up to Budget ready sensors by
// decreasing marginal utility.
func (p OnlineGreedyPolicy) Activate(_ int, ready []int) []int {
	if p.Factory == nil || len(ready) == 0 {
		return nil
	}
	budget := p.Budget
	if budget <= 0 {
		budget = len(ready)
	}
	if budget > len(ready) {
		budget = len(ready)
	}
	oracle := p.Factory()
	chosen := make([]bool, len(ready))
	out := make([]int, 0, budget)
	for len(out) < budget {
		bestIdx, bestGain := -1, p.MinGain
		for i, v := range ready {
			if chosen[i] {
				continue
			}
			if g := oracle.Gain(v); g > bestGain {
				bestIdx, bestGain = i, g
			}
		}
		if bestIdx < 0 {
			break
		}
		chosen[bestIdx] = true
		oracle.Add(ready[bestIdx])
		out = append(out, ready[bestIdx])
	}
	return out
}
