package sim

import (
	"math"
	"testing"

	"cool/internal/core"
	"cool/internal/energy"
	"cool/internal/submodular"
)

func singleTargetUtility(t *testing.T, n int, p float64) *submodular.DetectionUtility {
	t.Helper()
	probs := make(map[int]float64, n)
	for v := 0; v < n; v++ {
		probs[v] = p
	}
	u, err := submodular.NewDetectionUtility(n, []submodular.DetectionTarget{
		{Weight: 1, Probs: probs},
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func rhoPeriod(t *testing.T, rho float64) energy.Period {
	t.Helper()
	p, err := energy.PeriodFromRho(rho)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func greedySchedule(t *testing.T, n int, period energy.Period, factory core.OracleFactory) *core.Schedule {
	t.Helper()
	s, err := core.Greedy(core.Instance{N: n, Period: period, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunValidation(t *testing.T) {
	u := singleTargetUtility(t, 4, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, 4, period, factory)
	good := Config{
		NumSensors: 4,
		Slots:      8,
		Policy:     SchedulePolicy{Schedule: sched},
		Charging:   DeterministicCharging{Period: period},
		Factory:    factory,
	}
	if _, err := Run(good); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []func(Config) Config{
		func(c Config) Config { c.NumSensors = 0; return c },
		func(c Config) Config { c.Slots = 0; return c },
		func(c Config) Config { c.Policy = nil; return c },
		func(c Config) Config { c.Charging = nil; return c },
		func(c Config) Config { c.Factory = nil; return c },
		func(c Config) Config { c.Faults = []Fault{{Sensor: 9}}; return c },
		func(c Config) Config {
			c.Weather = []WeatherShift{{AtSlot: 1, NewPeriod: energy.Period{}}}
			return c
		},
		func(c Config) Config { c.Charging = DeterministicCharging{}; return c },
	}
	for i, mutate := range cases {
		if _, err := Run(mutate(good)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

// TestScheduleSimulationMatchesAnalyticUtility: under deterministic
// charging, simulating a feasible greedy schedule yields exactly the
// schedule's period utility tiled over the run.
func TestScheduleSimulationMatchesAnalyticUtility(t *testing.T) {
	const n = 8
	u := singleTargetUtility(t, n, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, n, period, factory)

	const alpha = 5
	res, err := Run(Config{
		NumSensors: n,
		Slots:      alpha * period.Slots(),
		Policy:     SchedulePolicy{Schedule: sched},
		Charging:   DeterministicCharging{Period: period},
		Factory:    factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := alpha * sched.PeriodUtility(factory)
	if math.Abs(res.TotalUtility-want) > 1e-9 {
		t.Errorf("simulated total %v != analytic %v", res.TotalUtility, want)
	}
	if res.ActivationsDenied != 0 {
		t.Errorf("feasible schedule had %d denied activations", res.ActivationsDenied)
	}
	wantAvg := want / float64(alpha*period.Slots())
	if math.Abs(res.AverageUtility-wantAvg) > 1e-9 {
		t.Errorf("average %v != %v", res.AverageUtility, wantAvg)
	}
	if len(res.PerSlot) != alpha*period.Slots() {
		t.Errorf("per-slot records = %d", len(res.PerSlot))
	}
}

// TestRemovalScheduleSimulates: a ρ < 1 removal schedule runs without
// denied activations too.
func TestRemovalScheduleSimulates(t *testing.T) {
	const n = 6
	u := singleTargetUtility(t, n, 0.3)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 0.5) // T=3, active 2
	sched := greedySchedule(t, n, period, factory)
	res, err := Run(Config{
		NumSensors: n,
		Slots:      4 * period.Slots(),
		Policy:     SchedulePolicy{Schedule: sched},
		Charging:   DeterministicCharging{Period: period},
		Factory:    factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ActivationsDenied != 0 {
		t.Errorf("removal schedule had %d denied activations", res.ActivationsDenied)
	}
	want := 4 * sched.PeriodUtility(factory)
	if math.Abs(res.TotalUtility-want) > 1e-9 {
		t.Errorf("simulated %v != analytic %v", res.TotalUtility, want)
	}
}

// TestAllReadyPolicyBurnsNetwork: activating everything at once leaves
// later slots of each period empty — the behaviour the paper's
// scheduling avoids — so its utility falls below the greedy schedule's.
func TestAllReadyPolicyBurnsNetwork(t *testing.T) {
	const n = 12
	u := singleTargetUtility(t, n, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, n, period, factory)

	slots := 8 * period.Slots()
	naive, err := Run(Config{
		NumSensors: n, Slots: slots,
		Policy:   AllReadyPolicy{},
		Charging: DeterministicCharging{Period: period},
		Factory:  factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	scheduled, err := Run(Config{
		NumSensors: n, Slots: slots,
		Policy:   SchedulePolicy{Schedule: sched},
		Charging: DeterministicCharging{Period: period},
		Factory:  factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if naive.AverageUtility >= scheduled.AverageUtility {
		t.Errorf("all-ready %v should underperform greedy schedule %v",
			naive.AverageUtility, scheduled.AverageUtility)
	}
	// The naive policy sees 3 of every 4 slots with nothing active.
	emptySlots := 0
	for _, rec := range naive.PerSlot {
		if rec.Active == 0 {
			emptySlots++
		}
	}
	if emptySlots < slots/2 {
		t.Errorf("expected most slots empty under all-ready, got %d/%d", emptySlots, slots)
	}
}

func TestFaultInjectionReducesUtility(t *testing.T) {
	const n = 8
	u := singleTargetUtility(t, n, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, n, period, factory)
	slots := 6 * period.Slots()

	healthy, err := Run(Config{
		NumSensors: n, Slots: slots,
		Policy:   SchedulePolicy{Schedule: sched},
		Charging: DeterministicCharging{Period: period},
		Factory:  factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	var faults []Fault
	for v := 0; v < n/2; v++ {
		faults = append(faults, Fault{Sensor: v, AtSlot: period.Slots()})
	}
	faulty, err := Run(Config{
		NumSensors: n, Slots: slots,
		Policy:   SchedulePolicy{Schedule: sched},
		Charging: DeterministicCharging{Period: period},
		Factory:  factory,
		Faults:   faults,
	})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.TotalUtility >= healthy.TotalUtility {
		t.Errorf("faulty run %v not below healthy %v", faulty.TotalUtility, healthy.TotalUtility)
	}
	if faulty.ActivationsDenied == 0 {
		t.Error("dead sensors should deny scheduled activations")
	}
}

func TestWeatherShiftChangesRates(t *testing.T) {
	const n = 4
	u := singleTargetUtility(t, n, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	sunny := rhoPeriod(t, 3)
	overcast := rhoPeriod(t, 7) // slower recharge after shift
	sched := greedySchedule(t, n, sunny, factory)
	slots := 10 * sunny.Slots()

	base, err := Run(Config{
		NumSensors: n, Slots: slots,
		Policy:   SchedulePolicy{Schedule: sched},
		Charging: DeterministicCharging{Period: sunny},
		Factory:  factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := Run(Config{
		NumSensors: n, Slots: slots,
		Policy:   SchedulePolicy{Schedule: sched},
		Charging: DeterministicCharging{Period: sunny},
		Factory:  factory,
		Weather:  []WeatherShift{{AtSlot: slots / 2, NewPeriod: overcast}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Slower recharge makes some scheduled sensors miss their slots.
	if !(shifted.TotalUtility < base.TotalUtility) {
		t.Errorf("weather shift did not reduce utility: %v vs %v",
			shifted.TotalUtility, base.TotalUtility)
	}
	if shifted.ActivationsDenied == 0 {
		t.Error("slower recharge should deny some activations")
	}
}

func TestRandomChargingValidation(t *testing.T) {
	period := rhoPeriod(t, 3)
	bad := []RandomCharging{
		{Period: energy.Period{}, EventRate: 1, EventDuration: 1},
		{Period: period, EventRate: 0, EventDuration: 1},
		{Period: period, EventRate: 1, EventDuration: 0},
		{Period: period, EventRate: 1, EventDuration: 1, RechargeStdFrac: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", i)
		}
		if _, err := m.newBattery(0); err == nil {
			t.Errorf("case %d: newBattery accepted invalid model", i)
		}
	}
}

// TestRandomChargingRuns: the Section-V model executes and yields
// nonzero utility; sparser events (lower duty) drain slower, letting
// sensors stay available at least as often as the saturated model.
func TestRandomChargingRuns(t *testing.T) {
	const n = 10
	u := singleTargetUtility(t, n, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, n, period, factory)

	run := func(rate, dur float64) *Result {
		res, err := Run(Config{
			NumSensors: n, Slots: 20 * period.Slots(),
			Policy: SchedulePolicy{Schedule: sched},
			Charging: RandomCharging{
				Period: period, EventRate: rate, EventDuration: dur,
			},
			Factory: factory,
			Seed:    99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	saturated := run(5, 2) // busy ~100% of active slots
	sparse := run(0.2, 0.5)
	if saturated.TotalUtility <= 0 || sparse.TotalUtility <= 0 {
		t.Fatal("random charging produced zero utility")
	}
	// With rare events the active sensors barely drain, so the network
	// can serve at least as much utility as the saturated case.
	if sparse.TotalUtility < saturated.TotalUtility {
		t.Errorf("sparse events %v < saturated %v", sparse.TotalUtility, saturated.TotalUtility)
	}
}

func TestRandomChargingDeterministicSeed(t *testing.T) {
	const n = 6
	u := singleTargetUtility(t, n, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, n, period, factory)
	cfg := Config{
		NumSensors: n, Slots: 12,
		Policy:   SchedulePolicy{Schedule: sched},
		Charging: RandomCharging{Period: period, EventRate: 1, EventDuration: 1},
		Factory:  factory,
		Seed:     5,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalUtility != b.TotalUtility {
		t.Error("same seed produced different results")
	}
}

func TestPolicyOutOfRangeActivation(t *testing.T) {
	u := singleTargetUtility(t, 2, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 1)
	_, err := Run(Config{
		NumSensors: 2, Slots: 2,
		Policy:   badPolicy{},
		Charging: DeterministicCharging{Period: period},
		Factory:  factory,
	})
	if err == nil {
		t.Error("out-of-range activation accepted")
	}
}

type badPolicy struct{}

func (badPolicy) Activate(int, []int) []int { return []int{99} }

func TestSchedulePolicyRequestsScheduledSet(t *testing.T) {
	sched, err := core.NewSchedule(core.ModePlacement, 2, []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	p := SchedulePolicy{Schedule: sched}
	// The policy states intent (sensors 0 and 1 at slot 0); feasibility
	// enforcement and denial accounting belong to the simulator.
	got := p.Activate(0, []int{1})
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Activate = %v, want [0 1]", got)
	}
}
