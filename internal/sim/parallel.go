package sim

import (
	"fmt"

	"cool/internal/parallel"
	"cool/internal/stats"
)

// This file implements the concurrent Monte-Carlo simulation engine.
//
// Sharding unit: the replication. One simulated run is a Markov chain
// over slots — every battery's state at slot t depends on slot t−1 — so
// slot windows of a single run cannot be sharded without changing the
// model. Independent replications can, and they are what the paper's
// Section-V evaluation averages anyway.
//
// Determinism contract: replication i always runs with seed
// ReplicationSeed(cfg.Seed, i), a pure SplitMix-style function of the
// base seed and the replication index, and per-replication summaries
// are merged in index order. The result is therefore bit-identical for
// every worker count, including workers == 1 (the sequential
// counterpart).
//
// Thread-safety: cfg.Policy, cfg.Charging and cfg.Factory are shared by
// all replications and must be safe for concurrent use. Every
// implementation in this repository is — policies and charging models
// only read their configuration, and oracle factories allocate fresh
// oracles over read-only utility tables.

// ReplicationSeed derives the RNG seed of Monte-Carlo replication i
// from a base seed. The derivation is stateless (stats.StreamSeed, a
// splitmix64 finalizer), so any worker can compute any replication's
// seed without coordination.
func ReplicationSeed(base uint64, i int) uint64 {
	return stats.StreamSeed(base, uint64(i))
}

// Replication is the per-replication summary of a Monte-Carlo run.
type Replication struct {
	// Index is the replication number in [0, reps).
	Index int
	// Seed is the derived seed the replication ran with.
	Seed uint64
	// TotalUtility is Σ_t U(S(t)) for the replication.
	TotalUtility float64
	// AverageUtility is the paper's per-slot per-target metric.
	AverageUtility float64
	// ActivationsDenied counts vetoed activation requests.
	ActivationsDenied int
}

// MonteCarloResult aggregates the replications of one RunParallel call.
type MonteCarloResult struct {
	// Replications holds the per-replication summaries in index order.
	Replications []Replication
	// AverageUtility summarizes the per-replication average utilities
	// (mean, std, min, max, median).
	AverageUtility stats.Summary
	// TotalUtility summarizes the per-replication total utilities.
	TotalUtility stats.Summary
	// ActivationsDenied totals the vetoed activations across all
	// replications.
	ActivationsDenied int
}

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval for the mean average utility.
func (m *MonteCarloResult) ConfidenceInterval95() float64 {
	xs := make([]float64, len(m.Replications))
	for i, r := range m.Replications {
		xs[i] = r.AverageUtility
	}
	return stats.ConfidenceInterval95(xs)
}

// RunParallel executes reps independent Monte-Carlo replications of cfg
// on up to workers goroutines (0 or negative selects runtime.NumCPU) and
// merges the per-replication summaries deterministically. Replication i
// is cfg with Seed = ReplicationSeed(cfg.Seed, i); its summary is
// identical to what a direct sim.Run of that configuration returns, so
// RunParallel(cfg, reps, 1) is the sequential counterpart and every
// worker count produces the same MonteCarloResult.
func RunParallel(cfg Config, reps, workers int) (*MonteCarloResult, error) {
	if reps <= 0 {
		return nil, fmt.Errorf("sim: non-positive replication count %d", reps)
	}
	summaries := make([]Replication, reps)
	err := parallel.For(workers, reps, func(i int) error {
		c := cfg // shallow copy: replications share the read-only fields
		c.Seed = ReplicationSeed(cfg.Seed, i)
		res, err := Run(c)
		if err != nil {
			return fmt.Errorf("sim: replication %d: %w", i, err)
		}
		summaries[i] = Replication{
			Index:             i,
			Seed:              c.Seed,
			TotalUtility:      res.TotalUtility,
			AverageUtility:    res.AverageUtility,
			ActivationsDenied: res.ActivationsDenied,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	avgs := make([]float64, reps)
	totals := make([]float64, reps)
	denied := 0
	for i, s := range summaries {
		avgs[i] = s.AverageUtility
		totals[i] = s.TotalUtility
		denied += s.ActivationsDenied
	}
	avgSummary, err := stats.Summarize(avgs)
	if err != nil {
		return nil, err
	}
	totalSummary, err := stats.Summarize(totals)
	if err != nil {
		return nil, err
	}
	return &MonteCarloResult{
		Replications:      summaries,
		AverageUtility:    avgSummary,
		TotalUtility:      totalSummary,
		ActivationsDenied: denied,
	}, nil
}
