package sim

import (
	"math"
	"testing"

	"cool/internal/submodular"
)

func TestEventConfigValidate(t *testing.T) {
	good := EventConfig{
		Targets:       1,
		Coverers:      func(int) []int { return []int{0} },
		Prob:          func(int, int) float64 { return 0.4 },
		EventsPerSlot: 1,
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []EventConfig{
		{Targets: 0, Coverers: good.Coverers, Prob: good.Prob, EventsPerSlot: 1},
		{Targets: 1, Prob: good.Prob, EventsPerSlot: 1},
		{Targets: 1, Coverers: good.Coverers, EventsPerSlot: 1},
		{Targets: 1, Coverers: good.Coverers, Prob: good.Prob, EventsPerSlot: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestEventResultDetectionRate(t *testing.T) {
	if (EventResult{}).DetectionRate() != 0 {
		t.Error("empty rate should be 0")
	}
	r := EventResult{Events: 4, Detected: 3}
	if r.DetectionRate() != 0.75 {
		t.Errorf("rate = %v", r.DetectionRate())
	}
}

// TestEmpiricalDetectionMatchesUtility is the end-to-end semantic
// check of the paper's utility model: generating concrete events and
// sampling per-sensor detections yields an empirical detection rate
// that converges to the analytic average utility of the executed
// schedule.
func TestEmpiricalDetectionMatchesUtility(t *testing.T) {
	const (
		n = 12
		m = 3
		p = 0.4
	)
	// Multi-target utility where target j is covered by a distinct
	// subset (sensors j, j+3, j+6, j+9).
	coverers := func(target int) []int {
		var out []int
		for v := target; v < n; v += m {
			out = append(out, v)
		}
		return out
	}
	targets := make([]submodular.DetectionTarget, m)
	for j := range targets {
		probs := make(map[int]float64)
		for _, v := range coverers(j) {
			probs[v] = p
		}
		targets[j] = submodular.DetectionTarget{Weight: 1, Probs: probs}
	}
	u, err := submodular.NewDetectionUtility(n, targets)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, n, period, factory)

	const slots = 4000 // long run so the empirical rate converges
	res, err := RunWithEvents(Config{
		NumSensors: n,
		Slots:      slots,
		Policy:     SchedulePolicy{Schedule: sched},
		Charging:   DeterministicCharging{Period: period},
		Factory:    factory,
		Targets:    m,
		Seed:       17,
	}, EventConfig{
		Targets:       m,
		Coverers:      coverers,
		Prob:          func(int, int) float64 { return p },
		EventsPerSlot: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events < slots*m*9/10 {
		t.Fatalf("unexpectedly few events: %d", res.Events)
	}
	analytic := res.Result.AverageUtility
	empirical := res.DetectionRate()
	if math.Abs(analytic-empirical) > 0.02 {
		t.Errorf("empirical detection rate %.4f deviates from analytic utility %.4f",
			empirical, analytic)
	}
}

func TestRunWithEventsValidation(t *testing.T) {
	u := singleTargetUtility(t, 2, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 1)
	sched := greedySchedule(t, 2, period, factory)
	cfg := Config{
		NumSensors: 2, Slots: 2,
		Policy:   SchedulePolicy{Schedule: sched},
		Charging: DeterministicCharging{Period: period},
		Factory:  factory,
	}
	if _, err := RunWithEvents(cfg, EventConfig{}); err == nil {
		t.Error("invalid event config accepted")
	}
	// Underlying sim errors propagate.
	badCfg := cfg
	badCfg.Slots = 0
	if _, err := RunWithEvents(badCfg, EventConfig{
		Targets:       1,
		Coverers:      func(int) []int { return nil },
		Prob:          func(int, int) float64 { return 0 },
		EventsPerSlot: 1,
	}); err == nil {
		t.Error("invalid sim config accepted")
	}
}

func TestActiveSetsRecorded(t *testing.T) {
	u := singleTargetUtility(t, 4, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, 4, period, factory)
	res, err := Run(Config{
		NumSensors: 4, Slots: 8,
		Policy:   SchedulePolicy{Schedule: sched},
		Charging: DeterministicCharging{Period: period},
		Factory:  factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ActiveSets) != 8 {
		t.Fatalf("ActiveSets length %d", len(res.ActiveSets))
	}
	for i, rec := range res.PerSlot {
		if len(res.ActiveSets[i]) != rec.Active {
			t.Errorf("slot %d: recorded %d active, counted %d",
				i, len(res.ActiveSets[i]), rec.Active)
		}
	}
}
