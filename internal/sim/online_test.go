package sim

import (
	"testing"

	"cool/internal/submodular"
)

func TestDefaultBudget(t *testing.T) {
	cases := []struct{ n, T, want int }{
		{100, 4, 25},
		{101, 4, 26},
		{3, 4, 1},
		{5, 0, 5},
	}
	for _, c := range cases {
		if got := DefaultBudget(c.n, c.T); got != c.want {
			t.Errorf("DefaultBudget(%d,%d) = %d, want %d", c.n, c.T, got, c.want)
		}
	}
}

func TestOnlineGreedyPolicyActivate(t *testing.T) {
	u := singleTargetUtility(t, 6, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	p := OnlineGreedyPolicy{Factory: factory, Budget: 2}
	got := p.Activate(0, []int{0, 1, 2, 3})
	if len(got) != 2 {
		t.Fatalf("activated %d, want budget 2", len(got))
	}
	// Empty ready set and nil factory degrade gracefully.
	if out := p.Activate(0, nil); len(out) != 0 {
		t.Error("empty ready set should yield nothing")
	}
	if out := (OnlineGreedyPolicy{}).Activate(0, []int{1}); len(out) != 0 {
		t.Error("nil factory should yield nothing")
	}
}

func TestOnlineGreedyPolicyMinGain(t *testing.T) {
	// Sensor 2 covers nothing: with MinGain 0 it is never selected.
	u, err := submodular.NewDetectionUtility(3, []submodular.DetectionTarget{
		{Weight: 1, Probs: map[int]float64{0: 0.5, 1: 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	p := OnlineGreedyPolicy{Factory: factory, Budget: 3}
	got := p.Activate(0, []int{0, 1, 2})
	if len(got) != 2 {
		t.Fatalf("activated %v, want the two covering sensors only", got)
	}
	for _, v := range got {
		if v == 2 {
			t.Error("zero-gain sensor activated")
		}
	}
}

// TestOnlineGreedyMatchesScheduleDeterministic: under deterministic
// charging with the matched budget, the online policy sustains the
// same steady-state utility as the offline greedy schedule on the
// symmetric single-target workload.
func TestOnlineGreedyMatchesScheduleDeterministic(t *testing.T) {
	const n = 12
	u := singleTargetUtility(t, n, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, n, period, factory)
	slots := 12 * period.Slots()

	offline, err := Run(Config{
		NumSensors: n, Slots: slots,
		Policy:   SchedulePolicy{Schedule: sched},
		Charging: DeterministicCharging{Period: period},
		Factory:  factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	online, err := Run(Config{
		NumSensors: n, Slots: slots,
		Policy: OnlineGreedyPolicy{
			Factory: factory,
			Budget:  DefaultBudget(n, period.Slots()),
		},
		Charging: DeterministicCharging{Period: period},
		Factory:  factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if online.AverageUtility < 0.9*offline.AverageUtility {
		t.Errorf("online %v far below offline %v", online.AverageUtility, offline.AverageUtility)
	}
}

// TestOnlineGreedyBeatsRigidScheduleUnderJitter: the future-work
// motivation — when recharge times jitter (Section V), the adaptive
// policy that activates partially recharged/re-ready sensors
// outperforms the rigid schedule that forfeits missed slots.
func TestOnlineGreedyBeatsRigidScheduleUnderJitter(t *testing.T) {
	const n = 20
	u := singleTargetUtility(t, n, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	period := rhoPeriod(t, 3)
	sched := greedySchedule(t, n, period, factory)
	charging := RandomCharging{
		Period:          period,
		EventRate:       8, // saturated: active slots drain fully
		EventDuration:   2,
		RechargeStdFrac: 0.25,
	}
	slots := 60 * period.Slots()

	rigid, err := Run(Config{
		NumSensors: n, Slots: slots,
		Policy:   SchedulePolicy{Schedule: sched},
		Charging: charging,
		Factory:  factory,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Run(Config{
		NumSensors: n, Slots: slots,
		Policy: OnlineGreedyPolicy{
			Factory: factory,
			Budget:  DefaultBudget(n, period.Slots()),
		},
		Charging: charging,
		Factory:  factory,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.AverageUtility <= rigid.AverageUtility {
		t.Errorf("adaptive %v did not beat rigid %v under recharge jitter",
			adaptive.AverageUtility, rigid.AverageUtility)
	}
}
