package sim

import (
	"math"
	"testing"

	"cool/internal/core"
	"cool/internal/energy"
	"cool/internal/submodular"
)

func heteroPeriods(t *testing.T, rhos ...float64) []energy.Period {
	t.Helper()
	out := make([]energy.Period, len(rhos))
	for i, rho := range rhos {
		p, err := energy.PeriodFromRho(rho)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

// TestHeteroScheduleSimulationMatchesAnalytic: executing the
// heterogeneous greedy schedule under per-sensor charging reproduces
// its analytic hyperperiod utility with no denied activations.
func TestHeteroScheduleSimulationMatchesAnalytic(t *testing.T) {
	const n = 6
	u := singleTargetUtility(t, n, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	periods := heteroPeriods(t, 1, 1, 3, 3, 5, 5)
	hs, err := core.GreedyHetero(core.HeteroInstance{Periods: periods, Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 3
	res, err := Run(Config{
		NumSensors: n,
		Slots:      cycles * hs.Hyperperiod(),
		Policy:     HeteroSchedulePolicy{Schedule: hs},
		Charging:   HeterogeneousCharging{Periods: periods},
		Factory:    factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ActivationsDenied != 0 {
		t.Errorf("denied activations: %d", res.ActivationsDenied)
	}
	want := float64(cycles) * hs.HyperperiodUtility(factory)
	if math.Abs(res.TotalUtility-want) > 1e-9 {
		t.Errorf("simulated %v != analytic %v", res.TotalUtility, want)
	}
}

func TestHeterogeneousChargingValidation(t *testing.T) {
	h := HeterogeneousCharging{Periods: heteroPeriods(t, 3)}
	if _, err := h.newBattery(5); err == nil {
		t.Error("out-of-range sensor accepted")
	}
	if _, err := h.newBattery(-1); err == nil {
		t.Error("negative sensor accepted")
	}
	bad := HeterogeneousCharging{Periods: []energy.Period{{}}}
	if _, err := bad.newBattery(0); err == nil {
		t.Error("invalid period accepted")
	}
	// Run surfaces the validation error.
	u := singleTargetUtility(t, 2, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	_, err := Run(Config{
		NumSensors: 2, Slots: 2,
		Policy:   AllReadyPolicy{},
		Charging: HeterogeneousCharging{Periods: heteroPeriods(t, 3)}, // too few
		Factory:  factory,
	})
	if err == nil {
		t.Error("period/sensor count mismatch accepted")
	}
}

// TestHeteroFastChargersCycleMoreOften: under all-ready, a ρ=1 sensor
// activates twice as often as a ρ=3 sensor.
func TestHeteroFastChargersCycleMoreOften(t *testing.T) {
	u := singleTargetUtility(t, 2, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	periods := heteroPeriods(t, 1, 3)
	res, err := Run(Config{
		NumSensors: 2,
		Slots:      24,
		Policy:     AllReadyPolicy{},
		Charging:   HeterogeneousCharging{Periods: periods},
		Factory:    factory,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	for _, set := range res.ActiveSets {
		for _, v := range set {
			counts[v]++
		}
	}
	// Sensor 0 (T=2) activates every other slot: 12 of 24; sensor 1
	// (T=4) every fourth: 6 of 24.
	if counts[0] != 12 || counts[1] != 6 {
		t.Errorf("activation counts = %v, want [12 6]", counts)
	}
}

func TestHeterogeneousChargingRejectsWeatherShifts(t *testing.T) {
	u := singleTargetUtility(t, 2, 0.4)
	factory := func() submodular.RemovalOracle { return u.Oracle() }
	_, err := Run(Config{
		NumSensors: 2, Slots: 4,
		Policy:   AllReadyPolicy{},
		Charging: HeterogeneousCharging{Periods: heteroPeriods(t, 1, 3)},
		Factory:  factory,
		Weather:  []WeatherShift{{AtSlot: 2, NewPeriod: rhoPeriod(t, 5)}},
	})
	if err == nil {
		t.Error("weather shift with heterogeneous charging accepted")
	}
}
