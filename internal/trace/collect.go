package trace

import (
	"fmt"
	"sort"

	"cool/internal/geometry"
	"cool/internal/netsim"
	"cool/internal/protocol"
)

// This file closes the loop between the measurement campaign and the
// radio testbed: the paper's rooftop deployment did not read its motes
// over a wire — every voltage sample travelled hop by hop over the
// lossy radio network to the base station. ReplayCollection replays
// campaign records through internal/protocol's convergecast over the
// flat internal/netsim core, which is how the trace layer exercises the
// batched packet API end to end (AddNodes bulk registration, Batch
// beacons, ReceiveInto drains).

// ReplayConfig tunes the radio replay of a measurement campaign.
type ReplayConfig struct {
	// Loss is the per-link drop probability in [0, 1) (default 0.1).
	Loss float64
	// Spacing is the mote grid spacing (default 30).
	Spacing float64
	// RadioRange is the transmission range (default 1.6·Spacing, which
	// keeps the mote grid connected including diagonals).
	RadioRange float64
	// SamplesPerNode bounds how many of each node's records are
	// reported over the radio (default 3; 0 means the default).
	SamplesPerNode int
	// MaxTicks bounds the protocol run (default 20000).
	MaxTicks int
	// Seed drives radio loss and jitter.
	Seed uint64
}

func (c *ReplayConfig) defaults() error {
	if c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("trace: replay loss %v outside [0,1)", c.Loss)
	}
	if c.Loss == 0 {
		c.Loss = 0.1
	}
	if c.Spacing == 0 {
		c.Spacing = 30
	}
	if c.RadioRange == 0 {
		c.RadioRange = 1.6 * c.Spacing
	}
	if c.SamplesPerNode == 0 {
		c.SamplesPerNode = 3
	}
	if c.MaxTicks == 0 {
		c.MaxTicks = 20000
	}
	if c.Spacing <= 0 || c.RadioRange <= 0 || c.SamplesPerNode < 0 || c.MaxTicks < 1 {
		return fmt.Errorf("trace: invalid replay config %+v", *c)
	}
	return nil
}

// ReplayResult summarizes one radio replay of a campaign.
type ReplayResult struct {
	// Nodes is the number of motes that reported.
	Nodes int
	// Expected and Collected count the reports queued and the reports
	// that reached the base station.
	Expected, Collected int
	// Ticks is how many protocol rounds the collection took.
	Ticks int
	// Complete records whether every queued report arrived within the
	// tick budget.
	Complete bool
	// Sent, Delivered, Dropped are the radio medium's packet counters.
	Sent, Delivered, Dropped int
}

// ReplayCollection replays campaign records over the simulated radio
// testbed: motes are placed on a grid around the base station, the
// protocol engine synchronizes them with beacons, and each mote
// convergecasts up to SamplesPerNode of its voltage readings to the
// base over the lossy medium.
func ReplayCollection(records []Record, cfg ReplayConfig) (*ReplayResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: no records to replay")
	}

	// Distinct node IDs, ascending; mote rank k becomes radio node k+1
	// (the base station is netsim node 0 by protocol convention).
	byNode := make(map[int][]Record)
	for _, r := range records {
		byNode[r.Node] = append(byNode[r.Node], r)
	}
	motes := make([]int, 0, len(byNode))
	for node := range byNode {
		motes = append(motes, node)
	}
	sort.Ints(motes)

	// One grid for base + fleet: slot 0 is the base at the origin,
	// mote rank k occupies slot k+1.
	side := 1
	for side*side < len(motes)+1 {
		side++
	}
	specs := make([]netsim.NodeSpec, 0, len(motes)+1)
	specs = append(specs, netsim.NodeSpec{ID: protocol.BaseID, Radio: cfg.RadioRange})
	for k := range motes {
		slot := k + 1
		specs = append(specs, netsim.NodeSpec{
			ID: netsim.NodeID(k + 1),
			Pos: geometry.Point{
				X: float64(slot%side) * cfg.Spacing,
				Y: float64(slot/side) * cfg.Spacing,
			},
			Radio: cfg.RadioRange,
		})
	}

	radio, err := netsim.NewNetwork(netsim.WithLoss(cfg.Loss), netsim.WithSeed(cfg.Seed))
	if err != nil {
		return nil, err
	}
	if err := radio.AddNodes(specs); err != nil {
		return nil, err
	}
	if !radio.Connected() {
		return nil, fmt.Errorf("trace: replay radio grid disconnected (spacing %v, range %v)",
			cfg.Spacing, cfg.RadioRange)
	}

	engine, err := protocol.NewEngine(protocol.Config{}, radio)
	if err != nil {
		return nil, err
	}
	for _, s := range specs {
		if err := engine.Register(s.ID); err != nil {
			return nil, err
		}
	}

	expected := 0
	for k, node := range motes {
		recs := byNode[node]
		limit := cfg.SamplesPerNode
		if limit > len(recs) {
			limit = len(recs)
		}
		for i := 0; i < limit; i++ {
			if err := engine.Report(netsim.NodeID(k+1), i, recs[i].Voltage); err != nil {
				return nil, err
			}
			expected++
		}
	}

	ticks, complete, err := engine.RunUntil(func() bool {
		return len(engine.Collected()) >= expected
	}, cfg.MaxTicks)
	if err != nil {
		return nil, err
	}
	sent, delivered, dropped := radio.Stats()
	return &ReplayResult{
		Nodes:     len(motes),
		Expected:  expected,
		Collected: len(engine.Collected()),
		Ticks:     ticks,
		Complete:  complete,
		Sent:      sent,
		Delivered: delivered,
		Dropped:   dropped,
	}, nil
}
