// Package trace defines the measurement-trace records produced by the
// (simulated) testbed, CSV serialization for them, and the glue that
// turns multi-day solar simulations into per-node traces and estimated
// charging patterns.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"cool/internal/energy"
	"cool/internal/solar"
	"cool/internal/stats"
)

// Record is one logged measurement of one node.
type Record struct {
	// Node is the reporting node's ID.
	Node int
	// At is the time since the start of the measurement campaign.
	At time.Duration
	// Lux is the measured light strength.
	Lux float64
	// Voltage is the battery terminal voltage.
	Voltage float64
	// State is the node's energy state (active/passive/ready).
	State energy.State
}

var csvHeader = []string{"node", "at_seconds", "lux", "voltage", "state"}

// WriteCSV serializes records with a header row.
func WriteCSV(w io.Writer, records []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	row := make([]string, 5)
	for i, r := range records {
		row[0] = strconv.Itoa(r.Node)
		row[1] = strconv.FormatFloat(r.At.Seconds(), 'f', 3, 64)
		row[2] = strconv.FormatFloat(r.Lux, 'f', 1, 64)
		row[3] = strconv.FormatFloat(r.Voltage, 'f', 4, 64)
		row[4] = strconv.Itoa(int(r.State))
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: writing record %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses records produced by WriteCSV.
func ReadCSV(r io.Reader) ([]Record, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	for i, h := range csvHeader {
		if header[i] != h {
			return nil, fmt.Errorf("trace: header column %d is %q, want %q", i, header[i], h)
		}
	}
	var out []Record
	for line := 2; ; line++ {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		rec, err := parseRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
}

func parseRow(row []string) (Record, error) {
	node, err := strconv.Atoi(row[0])
	if err != nil {
		return Record{}, fmt.Errorf("bad node: %w", err)
	}
	secs, err := strconv.ParseFloat(row[1], 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad at_seconds: %w", err)
	}
	lux, err := strconv.ParseFloat(row[2], 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad lux: %w", err)
	}
	volt, err := strconv.ParseFloat(row[3], 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad voltage: %w", err)
	}
	st, err := strconv.Atoi(row[4])
	if err != nil {
		return Record{}, fmt.Errorf("bad state: %w", err)
	}
	if st < int(energy.StateActive) || st > int(energy.StateReady) {
		return Record{}, fmt.Errorf("state %d out of range", st)
	}
	return Record{
		Node:    node,
		At:      time.Duration(secs * float64(time.Second)),
		Lux:     lux,
		Voltage: volt,
		State:   energy.State(st),
	}, nil
}

// CampaignConfig describes a multi-day measurement campaign on the
// simulated testbed.
type CampaignConfig struct {
	// Nodes is the number of motes to log.
	Nodes int
	// Days lists the weather of each simulated day, in order.
	Days []solar.Weather
	// PanelsByNode optionally assigns a panel count per node (default
	// 1, with every third node carrying 2 — mirroring the paper's mixed
	// SolarMote fleet).
	PanelsByNode []int
	// StartHour is the local hour the campaign starts (default 21.9,
	// matching the paper's 21:55 start).
	StartHour float64
	// Interval is the sampling interval (default 5 minutes).
	Interval time.Duration
	// Seed drives all randomness.
	Seed uint64
}

func (c *CampaignConfig) defaults() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("trace: non-positive node count %d", c.Nodes)
	}
	if len(c.Days) == 0 {
		return errors.New("trace: campaign needs at least one day")
	}
	if c.StartHour == 0 {
		c.StartHour = 21.9
	}
	if c.Interval == 0 {
		c.Interval = 5 * time.Minute
	}
	if c.Interval < 0 {
		return fmt.Errorf("trace: negative interval %v", c.Interval)
	}
	if c.PanelsByNode != nil && len(c.PanelsByNode) != c.Nodes {
		return fmt.Errorf("trace: PanelsByNode has %d entries for %d nodes",
			len(c.PanelsByNode), c.Nodes)
	}
	return nil
}

// Campaign simulates the measurement campaign and returns all records
// sorted by node then time.
func Campaign(cfg CampaignConfig) ([]Record, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)
	var out []Record
	for node := 0; node < cfg.Nodes; node++ {
		panels := 1
		if cfg.PanelsByNode != nil {
			panels = cfg.PanelsByNode[node]
		} else if node%3 == 2 {
			panels = 2
		}
		nodeRng := rng.Split()
		offset := time.Duration(0)
		var mote *solar.Mote
		for dayIdx, weather := range cfg.Days {
			day, err := solar.NewDay(solar.DayConfig{Weather: weather, Panels: panels}, nodeRng)
			if err != nil {
				return nil, fmt.Errorf("trace: node %d day %d: %w", node, dayIdx, err)
			}
			// The mote persists across days; only the sky changes.
			if mote == nil {
				mote, err = solar.NewMote(solar.MoteConfig{}, day)
				if err != nil {
					return nil, fmt.Errorf("trace: node %d: %w", node, err)
				}
			} else {
				mote = mote.WithDay(day)
			}
			start := cfg.StartHour + offset.Hours()
			samples, err := mote.Trace(start, 24*time.Hour-cfg.Interval, cfg.Interval)
			if err != nil {
				return nil, fmt.Errorf("trace: node %d day %d: %w", node, dayIdx, err)
			}
			for _, s := range samples {
				out = append(out, Record{
					Node:    node,
					At:      offset + s.At,
					Lux:     s.Lux,
					Voltage: s.Voltage,
					State:   s.State,
				})
			}
			offset += 24 * time.Hour
		}
	}
	return out, nil
}

// NodeRecords filters a campaign down to one node's records.
func NodeRecords(records []Record, node int) []Record {
	var out []Record
	for _, r := range records {
		if r.Node == node {
			out = append(out, r)
		}
	}
	return out
}

// EstimatePatterns runs the charging-pattern estimator over one node's
// records using the given window (the paper's ≈2 h horizon).
func EstimatePatterns(records []Record, window time.Duration) ([]energy.Pattern, error) {
	samples := make([]energy.VoltageSample, len(records))
	for i, r := range records {
		samples[i] = energy.VoltageSample{At: r.At, Voltage: r.Voltage}
	}
	return energy.EstimateWindows(samples, window, energy.DefaultEstimatorConfig())
}
