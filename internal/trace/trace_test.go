package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"cool/internal/energy"
	"cool/internal/solar"
)

func sampleRecords() []Record {
	return []Record{
		{Node: 0, At: 0, Lux: 100.5, Voltage: 2.95, State: energy.StateActive},
		{Node: 0, At: 5 * time.Minute, Lux: 200, Voltage: 2.80, State: energy.StateActive},
		{Node: 1, At: 0, Lux: 0, Voltage: 2.10, State: energy.StatePassive},
		{Node: 1, At: 5 * time.Minute, Lux: 50, Voltage: 2.20, State: energy.StateReady},
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := sampleRecords()
	if err := WriteCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round trip %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Node != want[i].Node || got[i].State != want[i].State {
			t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
		}
		if got[i].At != want[i].At {
			t.Errorf("record %d At: %v != %v", i, got[i].At, want[i].At)
		}
		if got[i].Voltage != want[i].Voltage {
			t.Errorf("record %d Voltage: %v != %v", i, got[i].Voltage, want[i].Voltage)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,row,here,x\n",
		"node,at_seconds,lux,voltage,state\nnot-a-number,0,0,0,1\n",
		"node,at_seconds,lux,voltage,state\n0,xx,0,0,1\n",
		"node,at_seconds,lux,voltage,state\n0,0,xx,0,1\n",
		"node,at_seconds,lux,voltage,state\n0,0,0,xx,1\n",
		"node,at_seconds,lux,voltage,state\n0,0,0,0,xx\n",
		"node,at_seconds,lux,voltage,state\n0,0,0,0,9\n",
		"node,at_seconds,lux,voltage,state\n0,0,0\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: malformed CSV accepted", i)
		}
	}
}

func TestReadCSVEmptyBody(t *testing.T) {
	got, err := ReadCSV(strings.NewReader("node,at_seconds,lux,voltage,state\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d records from empty body", len(got))
	}
}

func TestCampaignValidation(t *testing.T) {
	bad := []CampaignConfig{
		{Nodes: 0, Days: []solar.Weather{solar.WeatherSunny}},
		{Nodes: 2, Days: nil},
		{Nodes: 2, Days: []solar.Weather{solar.WeatherSunny}, Interval: -time.Second},
		{Nodes: 2, Days: []solar.Weather{solar.WeatherSunny}, PanelsByNode: []int{1}},
	}
	for i, cfg := range bad {
		if _, err := Campaign(cfg); err == nil {
			t.Errorf("case %d: invalid campaign accepted", i)
		}
	}
}

func TestCampaignProducesMultiDayTraces(t *testing.T) {
	records, err := Campaign(CampaignConfig{
		Nodes:    2,
		Days:     []solar.Weather{solar.WeatherSunny, solar.WeatherPartlyCloudy},
		Interval: 10 * time.Minute,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	perDay := int(24 * time.Hour / (10 * time.Minute)) // samples per day per node
	want := 2 * 2 * perDay
	if len(records) != want {
		t.Fatalf("records = %d, want %d", len(records), want)
	}
	n0 := NodeRecords(records, 0)
	n1 := NodeRecords(records, 1)
	if len(n0) != len(n1) || len(n0) != want/2 {
		t.Fatalf("per-node counts wrong: %d / %d", len(n0), len(n1))
	}
	// Time advances monotonically within a node across days.
	for i := 1; i < len(n0); i++ {
		if n0[i].At <= n0[i-1].At {
			t.Fatal("node trace not monotone in time")
		}
	}
	if n0[len(n0)-1].At < 24*time.Hour {
		t.Error("second day records missing")
	}
}

func TestCampaignDeterministic(t *testing.T) {
	cfg := CampaignConfig{
		Nodes:    1,
		Days:     []solar.Weather{solar.WeatherSunny},
		Interval: 15 * time.Minute,
		Seed:     7,
	}
	a, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Campaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("campaign not deterministic")
		}
	}
}

// TestCampaignPatternEstimation is the end-to-end Figure-7 pipeline:
// generate a sunny-day trace, estimate per-window patterns, and verify
// the daytime windows land near the paper's ρ = 3.
func TestCampaignPatternEstimation(t *testing.T) {
	records, err := Campaign(CampaignConfig{
		Nodes:    1,
		Days:     []solar.Weather{solar.WeatherSunny},
		Interval: time.Minute,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := EstimatePatterns(NodeRecords(records, 0), 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) == 0 {
		t.Fatal("no daytime windows estimated")
	}
	// At least one midday window should show rho in [2, 5].
	found := false
	for _, p := range patterns {
		r := p.Rho()
		if r >= 2 && r <= 5 {
			found = true
			break
		}
	}
	if !found {
		rhos := make([]float64, len(patterns))
		for i, p := range patterns {
			rhos[i] = p.Rho()
		}
		t.Errorf("no window with rho in [2,5]; rhos = %v", rhos)
	}
}

func TestNodeRecordsEmpty(t *testing.T) {
	if got := NodeRecords(sampleRecords(), 99); len(got) != 0 {
		t.Errorf("NodeRecords(99) = %v", got)
	}
}
