package trace

import (
	"testing"
	"time"

	"cool/internal/solar"
)

func campaignRecords(t *testing.T, nodes int) []Record {
	t.Helper()
	recs, err := Campaign(CampaignConfig{
		Nodes:    nodes,
		Days:     []solar.Weather{solar.WeatherSunny},
		Interval: time.Hour,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestReplayCollectionDeliversAllReports(t *testing.T) {
	recs := campaignRecords(t, 4)
	res, err := ReplayCollection(recs, ReplayConfig{
		Loss:           0.2,
		SamplesPerNode: 2,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 4 {
		t.Errorf("Nodes = %d, want 4", res.Nodes)
	}
	if res.Expected != 8 {
		t.Errorf("Expected = %d, want 8", res.Expected)
	}
	if !res.Complete || res.Collected != res.Expected {
		t.Errorf("collection incomplete: %+v", res)
	}
	if res.Sent == 0 || res.Delivered == 0 {
		t.Errorf("no radio traffic recorded: %+v", res)
	}
	if res.Sent != res.Delivered+res.Dropped {
		t.Errorf("stats inconsistent: %+v", res)
	}
	if res.Ticks <= 0 {
		t.Errorf("Ticks = %d", res.Ticks)
	}
}

func TestReplayCollectionDeterministic(t *testing.T) {
	recs := campaignRecords(t, 3)
	cfg := ReplayConfig{Loss: 0.3, SamplesPerNode: 2, Seed: 7}
	a, err := ReplayCollection(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayCollection(recs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Errorf("replay not deterministic: %+v vs %+v", a, b)
	}
}

func TestReplayCollectionValidation(t *testing.T) {
	recs := campaignRecords(t, 2)
	if _, err := ReplayCollection(nil, ReplayConfig{}); err == nil {
		t.Error("empty record set accepted")
	}
	if _, err := ReplayCollection(recs, ReplayConfig{Loss: -0.5}); err == nil {
		t.Error("negative loss accepted")
	}
	if _, err := ReplayCollection(recs, ReplayConfig{Spacing: -1}); err == nil {
		t.Error("negative spacing accepted")
	}
	// A range far below the spacing leaves the grid disconnected.
	if _, err := ReplayCollection(recs, ReplayConfig{Spacing: 30, RadioRange: 1}); err == nil {
		t.Error("disconnected radio grid accepted")
	}
}
