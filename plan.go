package cool

import (
	"fmt"

	"cool/internal/core"
	"cool/internal/stats"
)

// Objective selects what a plan optimizes: the paper's per-period
// submodular utility, or coverage lifetime under battery budgets.
type Objective = core.Objective

// Objective constants. The zero value of PlanRequest.Objective means
// ObjectiveUtility, so existing callers and wire clients keep their
// behavior without naming an objective.
const (
	// ObjectiveUtility maximizes average per-slot utility over one
	// charging period (Section IV of the paper).
	ObjectiveUtility = core.ObjectiveUtility
	// ObjectiveLifetime maximizes the number of consecutive slots the
	// coverage requirement holds under battery budgets.
	ObjectiveLifetime = core.ObjectiveLifetime
)

// ParseObjective parses an objective name; the empty string means
// ObjectiveUtility (the wire and CLI default).
func ParseObjective(s string) (Objective, error) { return core.ParseObjective(s) }

// Algorithm names a planning engine accepted by Planner.Plan.
type Algorithm string

// Algorithms for the utility objective.
const (
	// AlgorithmGreedy is the paper's greedy hill-climbing scheme
	// (Algorithm 1 / its removal form), the default under
	// ObjectiveUtility.
	AlgorithmGreedy Algorithm = "greedy"
	// AlgorithmLazyGreedy is the same schedule via lazy marginal
	// evaluation (CELF or its removal dual).
	AlgorithmLazyGreedy Algorithm = "lazy-greedy"
	// AlgorithmParallelGreedy shards the greedy scans across workers.
	AlgorithmParallelGreedy Algorithm = "parallel-greedy"
	// AlgorithmParallelLazyGreedy shards the lazy initialization.
	AlgorithmParallelLazyGreedy Algorithm = "parallel-lazy-greedy"
	// AlgorithmExact is the branch-and-bound optimum (small instances).
	AlgorithmExact Algorithm = "exact"
	// AlgorithmLPRound is LP relaxation + randomized rounding.
	AlgorithmLPRound Algorithm = "lp-round"
	// AlgorithmLPRoundDeterministic derandomizes the rounding by
	// conditional expectations.
	AlgorithmLPRoundDeterministic Algorithm = "lp-round-det"
)

// Algorithms for the lifetime objective.
const (
	// AlgorithmHEF is the high-energy-first lifetime scheduler: each
	// slot drafts the highest-charge coverers. Default under
	// ObjectiveLifetime.
	AlgorithmHEF Algorithm = "hef"
	// AlgorithmStripCover rotates greedy disjoint cover groups, the
	// Restricted Strip Covering shift discipline.
	AlgorithmStripCover Algorithm = "strip-cover"
	// AlgorithmLifetimeExact is the exhaustive lifetime reference
	// (tiny instances only).
	AlgorithmLifetimeExact Algorithm = "lifetime-exact"
)

// PlanRequest selects an objective, an algorithm and its options for
// one Planner.Plan call. The zero value plans the utility objective
// with the paper's greedy algorithm.
type PlanRequest struct {
	// Algorithm names the engine ("" = AlgorithmGreedy under the
	// utility objective, AlgorithmHEF under the lifetime objective).
	Algorithm Algorithm
	// Objective selects what to optimize (zero = ObjectiveUtility).
	Objective Objective
	// Workers bounds the planning concurrency of the parallel engines
	// (0 or negative = runtime.NumCPU); other engines ignore it.
	Workers int
	// MaxNodes bounds the branch-and-bound search of AlgorithmExact
	// (0 = default budget); other engines ignore it.
	MaxNodes int64
	// Seed drives the randomized rounding of AlgorithmLPRound; other
	// engines ignore it.
	Seed uint64
	// Lifetime configures the lifetime objective (nil = defaults);
	// the utility objective rejects a non-nil value.
	Lifetime *LifetimeOptions
}

// PlanResult is the outcome of one Planner.Plan call. Exactly one of
// Schedule (utility objective) and Lifetime (lifetime objective) is
// set.
type PlanResult struct {
	// Algorithm and Objective echo the resolved request (defaults
	// filled in).
	Algorithm Algorithm
	Objective Objective
	// Schedule is the periodic activation schedule (utility objective).
	Schedule *Schedule
	// LPBound is the LP optimum, a valid upper bound on any schedule's
	// period utility. Set only by the LP rounding algorithms.
	LPBound float64
	// Lifetime is the verified lifetime schedule (lifetime objective).
	Lifetime *LifetimeResult
}

// Plan computes a schedule for the requested objective with the
// requested algorithm. It is the single planning entry point: the
// historical per-algorithm methods (Greedy, LazyGreedy, Exact,
// LPRound, ...) are thin deprecated wrappers over Plan and remain
// bit-identical to it.
func (p *Planner) Plan(req PlanRequest) (*PlanResult, error) {
	obj := req.Objective
	if obj == 0 {
		obj = ObjectiveUtility
	}
	if !obj.Valid() {
		return nil, fmt.Errorf("cool: unknown objective %d", int(obj))
	}
	switch obj {
	case ObjectiveLifetime:
		opts := req.Lifetime
		if req.MaxNodes != 0 {
			// Thread the shared node-budget knob into the lifetime
			// options (an explicit LifetimeOptions.MaxNodes wins).
			copied := LifetimeOptions{}
			if opts != nil {
				copied = *opts
			}
			if copied.MaxNodes == 0 {
				copied.MaxNodes = req.MaxNodes
			}
			opts = &copied
		}
		res, err := p.PlanLifetime(req.Algorithm, opts)
		if err != nil {
			return nil, err
		}
		return &PlanResult{
			Algorithm: Algorithm(res.Algorithm),
			Objective: ObjectiveLifetime,
			Lifetime:  res,
		}, nil
	default:
		return p.planUtility(req)
	}
}

func (p *Planner) planUtility(req PlanRequest) (*PlanResult, error) {
	if req.Lifetime != nil {
		return nil, fmt.Errorf("cool: LifetimeOptions set but objective is %v", ObjectiveUtility)
	}
	alg := req.Algorithm
	if alg == "" {
		alg = AlgorithmGreedy
	}
	res := &PlanResult{Algorithm: alg, Objective: ObjectiveUtility}
	var err error
	switch alg {
	case AlgorithmGreedy:
		res.Schedule, err = core.Greedy(p.inst)
	case AlgorithmLazyGreedy:
		if core.ModeFor(p.period) == core.ModeRemoval {
			res.Schedule, err = core.LazyGreedyRemoval(p.inst)
		} else {
			res.Schedule, err = core.LazyGreedy(p.inst)
		}
	case AlgorithmParallelGreedy:
		res.Schedule, err = core.ParallelGreedy(p.inst, req.Workers)
	case AlgorithmParallelLazyGreedy:
		res.Schedule, err = core.ParallelLazyGreedy(p.inst, req.Workers)
	case AlgorithmExact:
		res.Schedule, err = core.Exact(p.inst, core.ExactOptions{MaxNodes: req.MaxNodes})
	case AlgorithmLPRound:
		cov, ok := utilityAsLinearizable(p.utility)
		if !ok {
			return nil, fmt.Errorf("cool: %s requires a weighted-coverage utility", alg)
		}
		if core.ModeFor(p.period) != core.ModePlacement {
			return nil, fmt.Errorf("cool: %s requires a placement-mode period (ρ ≥ 1)", alg)
		}
		res.Schedule, res.LPBound, err = core.LPRound(cov, p.period.Slots(), stats.NewRNG(req.Seed), core.RoundingOptions{})
	case AlgorithmLPRoundDeterministic:
		cov, ok := utilityAsLinearizable(p.utility)
		if !ok {
			return nil, fmt.Errorf("cool: %s requires a weighted-coverage utility", alg)
		}
		if core.ModeFor(p.period) != core.ModePlacement {
			return nil, fmt.Errorf("cool: %s requires a placement-mode period (ρ ≥ 1)", alg)
		}
		res.Schedule, res.LPBound, err = core.LPRoundConditional(cov, p.period.Slots())
	case AlgorithmHEF, AlgorithmStripCover, AlgorithmLifetimeExact:
		return nil, fmt.Errorf("cool: algorithm %q plans the lifetime objective; set PlanRequest.Objective", alg)
	default:
		return nil, fmt.Errorf("cool: unknown algorithm %q", alg)
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}
