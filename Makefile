# Development targets for the cool library.

GO ?= go

.PHONY: all build test test-short race vet bench bench-parallel bench-mem bench-grid bench-netsim bench-kernels bench-shard bench-replan bench-lifetime coold-e2e coold-crash figures examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full race-detector pass; gates the parallel scheduling and
# Monte-Carlo engines.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Time the parallel engines against the seed's reference greedy and
# write the machine-readable BENCH_parallel.json.
bench-parallel:
	$(GO) test -run xxx -bench 'BenchmarkGreedyParallel|BenchmarkSimParallel' -benchmem .
	$(GO) run ./cmd/coolbench -fig parallel

# Memory-layout smoke pass: vet, then the oracle hot-path benchmarks
# with allocation reporting (the flat layout's Gain/Loss/Bulk paths must
# report 0 allocs/op), then the quick old-vs-new layout comparison.
bench-mem:
	$(GO) vet ./...
	$(GO) test -run xxx -bench 'Oracle|Gain' -benchmem -benchtime 100x ./internal/submodular/
	$(GO) run ./cmd/coolbench -fig memlayout -quick

# Grid-index smoke pass: vet, then the spatial-hash build/query
# benchmarks with allocation reporting (CandidatesInto must report
# 0 allocs/op), then the quick brute-vs-grid incidence comparison.
bench-grid:
	$(GO) vet ./...
	$(GO) test -run xxx -bench 'Grid' -benchmem -benchtime 100x ./internal/geometry/grid/
	$(GO) run ./cmd/coolbench -fig grid -quick

# Radio-core smoke pass: vet, then the flat netsim broadcast/bulk
# benchmarks with allocation reporting (the Batch/ReceiveInto round must
# report 0 allocs/op after warmup), then the quick flat-vs-reference
# comparison that re-audits trace identity and writes BENCH_netsim.json.
bench-netsim:
	$(GO) vet ./...
	$(GO) test -run xxx -bench 'Netsim' -benchmem -benchtime 10x ./internal/netsim/
	$(GO) run ./cmd/coolbench -fig netsim -quick

# Kernel smoke pass: vet, then the unrolled popcount/Eval and
# sparse-refresh benchmarks with allocation reporting (the refresh and
# whole-set sweeps must report 0 allocs/op), then the quick
# scalar-vs-kernel / full-vs-sparse audit that re-checks bit identity
# and schedules_identical before writing BENCH_kernels.json.
bench-kernels:
	$(GO) vet ./...
	$(GO) test -run xxx -bench 'Kernel' -benchmem -benchtime 100x ./internal/bitset/ ./internal/submodular/
	$(GO) run ./cmd/coolbench -fig kernels -quick

# Sharded-planner smoke pass: vet, then the bench's own verdict gate
# (TestShardBenchQuick asserts k=1 bit identity, the utility-gap bound,
# and radio trace identity on a real decomposition), then the quick
# shard sweep that writes BENCH_shard.json.
bench-shard:
	$(GO) vet ./...
	$(GO) test -run TestShardBenchQuick -v ./internal/experiments/
	$(GO) run ./cmd/coolbench -fig shard -quick

# Incremental-replanning smoke pass: vet, then the bench's own verdict
# gate (TestReplanBenchQuick asserts init bit identity, feasibility and
# the utility-gap bound on every row), then the quick repair-vs-full
# sweep that writes BENCH_replan.json.
bench-replan:
	$(GO) vet ./...
	$(GO) test -run TestReplanBenchQuick -v ./internal/experiments/
	$(GO) run ./cmd/coolbench -fig replan -quick

# Cross-objective smoke pass: vet, then the bench's own verdict gate
# (TestLifetimeBenchQuick asserts feasibility on every row, the
# exact-reference cross-check and the utility-objective comparison),
# then the quick cross-objective sweep that writes BENCH_lifetime.json.
bench-lifetime:
	$(GO) vet ./...
	$(GO) test -run TestLifetimeBench -v ./internal/experiments/
	$(GO) run ./cmd/coolbench -fig lifetime -quick

# Planner-as-a-service gate: vet, then the whole coold stack — wire
# unit tests, golden wire corpus, admission determinism, and the e2e
# differential sessions (live client↔daemon bit-identical to direct
# library calls) — under the race detector, then a 30s hostile-bytes
# fuzz of the frame/request decoders.
coold-e2e:
	$(GO) vet ./internal/controlplane/ ./cmd/coold/
	$(GO) test -race ./internal/controlplane/ ./cmd/coold/
	$(GO) test ./internal/controlplane/ -fuzz FuzzWireDecode -fuzztime 30s

# Durability gate: the crash-point sweep (WAL recovery differential at
# every byte offset of a recorded session), the restart and
# watcher-vs-poller e2e differentials, and the daemon's TCP restart
# test, all under the race detector — then a 30s fuzz of the WAL
# replay path (decode never panics; accepted logs are serialization
# fixed points).
coold-crash:
	$(GO) vet ./internal/controlplane/ ./cmd/coold/
	$(GO) test -race -run 'TestCrash|TestWAL|TestStore|TestRestore|TestGoldenWAL|TestE2ERestartDifferential|TestE2EWatcher|TestE2EWatch|TestE2EObjective' -v ./internal/controlplane/
	$(GO) test -race -run 'TestRunDurableRestart' -v ./cmd/coold/
	$(GO) test ./internal/controlplane/ -fuzz FuzzWALReplay -fuzztime 30s

# Regenerate every paper figure and ablation into results/.
figures:
	$(GO) run ./cmd/coolbench -fig all -out results/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/forest
	$(GO) run ./examples/eventdetection
	$(GO) run ./examples/testbed
	$(GO) run ./examples/hetero

fuzz:
	$(GO) test ./internal/core/ -fuzz FuzzScheduleJSON -fuzztime 30s
	$(GO) test ./internal/lp/ -fuzz FuzzSolveRobustness -fuzztime 30s
	$(GO) test ./internal/geometry/grid/ -fuzz FuzzGridCandidates -fuzztime 30s
	$(GO) test ./internal/netsim/ -fuzz FuzzNetsimDiff -fuzztime 30s
	$(GO) test ./internal/core/ -fuzz FuzzEngineEquivalence -fuzztime 30s
	$(GO) test ./internal/shard/ -fuzz FuzzShardEquivalence -fuzztime 30s
	$(GO) test ./internal/core/ -fuzz FuzzIncrementalEquivalence -fuzztime 30s
	$(GO) test ./internal/controlplane/ -fuzz FuzzWireDecode -fuzztime 30s
	$(GO) test ./internal/lifetime/ -fuzz FuzzLifetimeFeasibility -fuzztime 30s
	$(GO) test ./internal/controlplane/ -fuzz FuzzWALReplay -fuzztime 30s

# Scope cleanup to generated artifacts only: `go clean -fuzzcache`
# drops the cached fuzz corpora under GOCACHE, never the committed
# seed corpora in */testdata/fuzz.
clean:
	$(GO) clean -fuzzcache
	rm -rf results/
