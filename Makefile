# Development targets for the cool library.

GO ?= go

.PHONY: all build test test-short vet bench figures examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper figure and ablation into results/.
figures:
	$(GO) run ./cmd/coolbench -fig all -out results/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/forest
	$(GO) run ./examples/eventdetection
	$(GO) run ./examples/testbed
	$(GO) run ./examples/hetero

fuzz:
	$(GO) test ./internal/core/ -fuzz FuzzScheduleJSON -fuzztime 30s
	$(GO) test ./internal/lp/ -fuzz FuzzSolveRobustness -fuzztime 30s

clean:
	rm -rf results/ testdata/fuzz
