package cool

import (
	"math"
	"testing"
	"time"
)

func deployTestNetwork(t *testing.T, n, m int) *Network {
	t.Helper()
	net, err := Deploy(DeployConfig{
		Field:   NewField(500),
		Sensors: n,
		Targets: m,
		Range:   120,
	}, 42)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func sunnyPeriod(t *testing.T) Period {
	t.Helper()
	p, err := PeriodFromRho(3)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPeriodFromTimesFacade(t *testing.T) {
	p, slot, err := PeriodFromTimes(45*time.Minute, 15*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if p.Slots() != 4 || slot != 15*time.Minute {
		t.Errorf("period = %+v slot = %v", p, slot)
	}
}

func TestEndToEndGreedyPipeline(t *testing.T) {
	net := deployTestNetwork(t, 30, 5)
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewPlanner(u, sunnyPeriod(t))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := planner.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if sched.NumSensors() != 30 || sched.Period() != 4 {
		t.Fatalf("schedule shape: %d sensors, T=%d", sched.NumSensors(), sched.Period())
	}
	avg := planner.AverageUtility(sched, 5)
	if avg <= 0 || avg > 1 {
		t.Errorf("average utility %v out of (0,1]", avg)
	}
	lower, upper, err := planner.Bracket()
	if err != nil {
		t.Fatal(err)
	}
	pu := planner.PeriodUtility(sched)
	if pu < lower-1e-9 || pu > upper+1e-9 {
		t.Errorf("period utility %v outside bracket [%v, %v]", pu, lower, upper)
	}

	// Simulate the schedule for 10 periods: deterministic charging must
	// reproduce the analytic utility exactly.
	res, err := Simulate(planner, sched, 40, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalUtility-10*pu) > 1e-9 {
		t.Errorf("simulated %v != analytic %v", res.TotalUtility, 10*pu)
	}
}

func TestNewPlannerValidation(t *testing.T) {
	if _, err := NewPlanner(nil, sunnyPeriod(t)); err == nil {
		t.Error("nil utility accepted")
	}
	net := deployTestNetwork(t, 5, 2)
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlanner(u, Period{}); err == nil {
		t.Error("invalid period accepted")
	}
}

func TestLazyGreedyFacadeMatches(t *testing.T) {
	net := deployTestNetwork(t, 40, 6)
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewPlanner(u, sunnyPeriod(t))
	if err != nil {
		t.Fatal(err)
	}
	eager, err := planner.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := planner.LazyGreedy()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(planner.PeriodUtility(eager)-planner.PeriodUtility(lazy)) > 1e-9 {
		t.Error("lazy and eager utilities differ")
	}
}

func TestExactFacadeSmall(t *testing.T) {
	net, err := AllCoverNetwork(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewPlanner(u, sunnyPeriod(t))
	if err != nil {
		t.Fatal(err)
	}
	exact, err := planner.Exact(0)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := planner.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	ev, gv := planner.PeriodUtility(exact), planner.PeriodUtility(greedy)
	if gv > ev+1e-9 || gv < ev/2-1e-9 {
		t.Errorf("greedy %v outside [OPT/2, OPT] for OPT=%v", gv, ev)
	}
}

func TestLPRoundFacade(t *testing.T) {
	net := deployTestNetwork(t, 12, 6)
	cov, err := NewTargetCountUtility(net)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewPlanner(cov, sunnyPeriod(t))
	if err != nil {
		t.Fatal(err)
	}
	sched, lpOpt, err := planner.LPRound(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := planner.PeriodUtility(sched); got > lpOpt+1e-6 {
		t.Errorf("rounded %v above LP bound %v", got, lpOpt)
	}
	// Detection utilities are not linearizable.
	det, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewPlanner(det, sunnyPeriod(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dp.LPRound(7); err == nil {
		t.Error("LPRound accepted a detection utility")
	}
}

func TestBaselinesFacade(t *testing.T) {
	net := deployTestNetwork(t, 20, 4)
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewPlanner(u, sunnyPeriod(t))
	if err != nil {
		t.Fatal(err)
	}
	names := BaselineNames()
	if len(names) == 0 {
		t.Fatal("no baseline names")
	}
	greedy, err := planner.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	gv := planner.PeriodUtility(greedy)
	for _, name := range names {
		s, err := planner.Baseline(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bv := planner.PeriodUtility(s); bv > gv+1e-9 {
			t.Errorf("%s beat greedy", name)
		}
	}
	if _, err := planner.Baseline("nope", 1); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestAreaUtilityFacade(t *testing.T) {
	sensors := []Sensor{
		{ID: 0, Pos: Point{X: 100, Y: 100}, Range: 60},
		{ID: 1, Pos: Point{X: 300, Y: 300}, Range: 60},
	}
	net, err := NewNetwork(sensors, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewAreaUtility(net, NewField(400), 200, nil)
	if err != nil {
		t.Fatal(err)
	}
	full := u.Eval([]int{0, 1})
	want := 2 * math.Pi * 3600
	if math.Abs(full-want)/want > 0.02 {
		t.Errorf("area utility %v, want ~%v", full, want)
	}
	sub, err := Subregions(net, NewField(400), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Cells) < 3 {
		t.Errorf("cells = %d", len(sub.Cells))
	}
	if _, err := Subregions(nil, NewField(1), 10); err == nil {
		t.Error("nil network accepted")
	}
}

func TestWrapFunctionAndCheckSubmodular(t *testing.T) {
	gadget, err := NewSubsetSumGadget([]int64{2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSubmodular(gadget.Utility); err != nil {
		t.Errorf("log-sum utility failed check: %v", err)
	}
	u, err := WrapFunction(gadget.Utility)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := PeriodFromRho(1)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewPlanner(u, p1)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := planner.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	if sched.Period() != 2 {
		t.Errorf("period = %d, want 2", sched.Period())
	}
	if _, err := WrapFunction(nil); err == nil {
		t.Error("nil function accepted")
	}
}

func TestSubsetSumGadgetFacade(t *testing.T) {
	g, err := NewSubsetSumGadget([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := g.HasPerfectPartition(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("{1,2,3} admits {1,2}|{3} but was rejected")
	}
	bad, err := NewSubsetSumGadget([]int64{1, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	ok, err = bad.HasPerfectPartition(ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("{1,1,3} has no perfect partition")
	}
}

func TestPaperUpperBoundFacade(t *testing.T) {
	b, err := PaperUpperBound(0.4, 100, sunnyPeriod(t))
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0.99 || b > 1 {
		t.Errorf("bound = %v", b)
	}
}

func TestMeasureCampaignFacade(t *testing.T) {
	records, err := MeasureCampaign(CampaignConfig{
		Nodes:    1,
		Days:     []Weather{WeatherSunny},
		Interval: 2 * time.Minute,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	patterns, err := EstimatePatterns(records, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) == 0 {
		t.Fatal("no patterns estimated")
	}
	tr, td, err := WeatherPattern(WeatherSunny, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr != 45*time.Minute || td != 15*time.Minute {
		t.Errorf("sunny pattern %v/%v", tr, td)
	}
}

func TestRandomChargingFacade(t *testing.T) {
	net := deployTestNetwork(t, 10, 3)
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewPlanner(u, sunnyPeriod(t))
	if err != nil {
		t.Fatal(err)
	}
	sched, err := planner.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSimulation(SimConfig{
		NumSensors: 10,
		Slots:      40,
		Policy:     SchedulePolicy{Schedule: sched},
		Charging: RandomCharging{
			Period:        planner.Period(),
			EventRate:     1,
			EventDuration: 1,
		},
		Factory: NewInstanceOracleFactory(u),
		Targets: 3,
		Seed:    4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AverageUtility <= 0 {
		t.Error("zero utility under random charging")
	}
}

func TestLPRoundDeterministicFacade(t *testing.T) {
	net := deployTestNetwork(t, 10, 5)
	cov, err := NewTargetCountUtility(net)
	if err != nil {
		t.Fatal(err)
	}
	planner, err := NewPlanner(cov, sunnyPeriod(t))
	if err != nil {
		t.Fatal(err)
	}
	sched, lpOpt, err := planner.LPRoundDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	val := planner.PeriodUtility(sched)
	if val > lpOpt+1e-6 {
		t.Errorf("value %v above LP bound %v", val, lpOpt)
	}
	if val < 0.63*lpOpt-1e-6 {
		t.Errorf("value %v below (1-1/e) of LP bound %v", val, lpOpt)
	}
	// Deterministic: two invocations agree exactly.
	again, _, err := planner.LPRoundDeterministic()
	if err != nil {
		t.Fatal(err)
	}
	if planner.PeriodUtility(again) != val {
		t.Error("LPRoundDeterministic is not deterministic")
	}
	// Detection utilities are rejected.
	det, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	dp, err := NewPlanner(det, sunnyPeriod(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dp.LPRoundDeterministic(); err == nil {
		t.Error("detection utility accepted")
	}
}

func TestNewCoverageUtilityFacade(t *testing.T) {
	u, err := NewCoverageUtility(3, []CoverageItem{
		{Value: 2, CoveredBy: []int{0, 1}},
		{Value: 1, CoveredBy: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Eval([]int{0, 2}); got != 3 {
		t.Errorf("eval = %v", got)
	}
	if err := CheckSubmodular(u); err != nil {
		t.Error(err)
	}
	if _, err := NewCoverageUtility(1, []CoverageItem{{Value: -1, CoveredBy: []int{0}}}); err == nil {
		t.Error("invalid items accepted")
	}
}

func TestRunClosedLoopFacade(t *testing.T) {
	net := deployTestNetwork(t, 12, 4)
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	weather, err := WeatherSequence(DefaultWeatherModel(), WeatherSunny, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunClosedLoop(u, weather, ClosedLoopOptions{Targets: 4, Estimate: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 5 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	if res.AverageUtility <= 0 {
		t.Error("zero run utility")
	}
	if res.Replans < 1 {
		t.Error("no replans recorded")
	}
	if _, err := RunClosedLoop(nil, weather, ClosedLoopOptions{}); err == nil {
		t.Error("nil utility accepted")
	}
	if _, err := WeatherSequence(nil, WeatherSunny, 3, 1); err == nil {
		t.Error("nil model accepted")
	}
}

// TestRunClosedLoopHeteroStreak combines both closed-loop extensions
// through the facade: a mixed-panel fleet living through a weather
// sequence with an injected rain streak.
func TestRunClosedLoopHeteroStreak(t *testing.T) {
	net := deployTestNetwork(t, 8, 3)
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	weather, err := WeatherSequence(DefaultWeatherModel(), WeatherSunny, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	weather, err = InjectWeatherStreak(weather, 2, 2, WeatherRain)
	if err != nil {
		t.Fatal(err)
	}
	opts := ClosedLoopOptions{
		Targets: 3,
		Panels:  []int{1, 2, 1, 2, 1, 2, 1, 2},
		Seed:    8,
	}
	res, err := RunClosedLoop(u, weather, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Windows) != 6 {
		t.Fatalf("windows = %d", len(res.Windows))
	}
	for i, w := range res.Windows {
		if w.Hyperperiod <= 0 {
			t.Errorf("window %d hyperperiod %d on mixed-panel fleet", i, w.Hyperperiod)
		}
	}
	// The streak forces a replan on entry and the rain windows must be
	// the worst of the run.
	if !res.Windows[2].Replanned {
		t.Error("no replan at streak entry")
	}
	for _, rainy := range res.Windows[2:4] {
		for _, clear := range []WindowReport{res.Windows[0], res.Windows[1]} {
			if rainy.AverageUtility >= clear.AverageUtility {
				t.Errorf("rain window %d utility %v not below clear window %d (%v)",
					rainy.Window, rainy.AverageUtility, clear.Window, clear.AverageUtility)
			}
		}
	}
	// Panel counts must match the fleet.
	opts.Panels = []int{1, 2}
	if _, err := RunClosedLoop(u, weather, opts); err == nil {
		t.Error("mismatched panel vector accepted")
	}
}

func TestNewAreaUtilityRefinedFacade(t *testing.T) {
	sensors := []Sensor{{ID: 0, Pos: Point{X: 50, Y: 50}, Range: 20}}
	net, err := NewNetwork(sensors, nil)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewAreaUtilityRefined(net, NewField(100), 50, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := u.Eval([]int{0})
	want := math.Pi * 400
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("refined area = %v, want ~%v", got, want)
	}
	if _, err := NewAreaUtilityRefined(net, NewField(100), 50, 1, nil); err == nil {
		t.Error("refine=1 accepted")
	}
}
