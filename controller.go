package cool

import (
	"errors"

	"cool/internal/controller"
)

// Closed-loop operation: the paper's measure → estimate → re-plan →
// execute cycle packaged as one call.
type (
	// WindowReport records one planning window of a closed-loop run.
	WindowReport = controller.WindowReport
	// ClosedLoopResult summarizes a closed-loop run.
	ClosedLoopResult = controller.Result
)

// ClosedLoopOptions tunes RunClosedLoop.
type ClosedLoopOptions struct {
	// Targets normalizes the reported utility (default 1).
	Targets int
	// SlotsPerWindow is the working slots per planning window (default
	// 48, a 12-hour day of 15-minute slots).
	SlotsPerWindow int
	// Estimate runs the full trace-estimation pipeline per window
	// instead of using the known per-weather pattern.
	Estimate bool
	// Panels gives per-sensor solar panel counts (nil = a homogeneous
	// single-panel fleet). Mixed counts switch the loop to the
	// heterogeneous path: per-sensor periods, heterogeneous greedy
	// planning, per-sensor charging.
	Panels []int
	// Seed drives all randomness.
	Seed uint64
}

// RunClosedLoop lives through the weather sequence with the utility's
// fleet: each window it (optionally) estimates the charging pattern,
// re-plans the greedy schedule when the pattern changed, and executes
// the window on the simulator.
func RunClosedLoop(u Utility, weather []Weather, opts ClosedLoopOptions) (*ClosedLoopResult, error) {
	if u == nil {
		return nil, errors.New("cool: nil utility")
	}
	return controller.Run(controller.Config{
		NumSensors:     u.GroundSize(),
		Factory:        u.NewOracle,
		Targets:        opts.Targets,
		Weather:        weather,
		SlotsPerWindow: opts.SlotsPerWindow,
		Estimate:       opts.Estimate,
		Panels:         opts.Panels,
		Seed:           opts.Seed,
	})
}
