package cool_test

import (
	"fmt"

	"cool"
)

// Example demonstrates the core pipeline: deploy, build the utility,
// plan with the greedy hill-climbing scheme, and evaluate.
func Example() {
	network, err := cool.Deploy(cool.DeployConfig{
		Field:   cool.NewField(200),
		Sensors: 12,
		Targets: 2,
		Range:   80,
	}, 3)
	if err != nil {
		panic(err)
	}
	utility, err := cool.NewDetectionUtility(network, cool.FixedProb(0.4))
	if err != nil {
		panic(err)
	}
	period, err := cool.PeriodFromRho(3) // Tr=45min / Td=15min
	if err != nil {
		panic(err)
	}
	planner, err := cool.NewPlanner(utility, period)
	if err != nil {
		panic(err)
	}
	schedule, err := planner.Greedy()
	if err != nil {
		panic(err)
	}
	fmt.Printf("T=%d slots, mode=%v\n", schedule.Period(), schedule.Mode())
	fmt.Printf("every sensor active once per period: %v\n",
		schedule.CheckFeasible(period) == nil)
	// Output:
	// T=4 slots, mode=placement
	// every sensor active once per period: true
}

// ExamplePeriodFromTimes normalizes the paper's measured sunny-weather
// charging pattern into a scheduling period.
func ExamplePeriodFromTimes() {
	period, slot, err := cool.PeriodFromTimes(45*60e9, 15*60e9) // 45min, 15min
	if err != nil {
		panic(err)
	}
	fmt.Printf("rho=%.0f T=%d slot=%v\n", period.Rho(), period.Slots(), slot)
	// Output:
	// rho=3 T=4 slot=15m0s
}

// ExamplePaperUpperBound evaluates the closed-form Figure-8 bound.
func ExamplePaperUpperBound() {
	period, err := cool.PeriodFromRho(3)
	if err != nil {
		panic(err)
	}
	bound, err := cool.PaperUpperBound(0.4, 8, period)
	if err != nil {
		panic(err)
	}
	fmt.Printf("U* = %.4f\n", bound) // 1 - 0.6^2
	// Output:
	// U* = 0.6400
}

// ExampleNewSubsetSumGadget runs the Theorem-3.1 NP-hardness reduction
// on a small Subset-Sum instance.
func ExampleNewSubsetSumGadget() {
	gadget, err := cool.NewSubsetSumGadget([]int64{3, 5, 2, 4})
	if err != nil {
		panic(err)
	}
	ok, err := gadget.HasPerfectPartition(cool.ExactOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("{3,5,2,4} has a perfect partition: %v\n", ok) // {3,4} vs {5,2}
	// Output:
	// {3,5,2,4} has a perfect partition: true
}

// ExampleCheckSubmodular validates a utility before trusting the
// greedy guarantee.
func ExampleCheckSubmodular() {
	network, err := cool.AllCoverNetwork(5, 2)
	if err != nil {
		panic(err)
	}
	utility, err := cool.NewDetectionUtility(network, cool.FixedProb(0.5))
	if err != nil {
		panic(err)
	}
	fmt.Println(cool.CheckSubmodular(utility) == nil)
	// Output:
	// true
}
