package cool

import (
	"math"
	"testing"
)

func mixedPeriods(t *testing.T, n int) []Period {
	t.Helper()
	rhos := []float64{1, 3, 5}
	out := make([]Period, n)
	for i := range out {
		p, err := PeriodFromRho(rhos[i%len(rhos)])
		if err != nil {
			t.Fatal(err)
		}
		out[i] = p
	}
	return out
}

func TestPlanHeteroEndToEnd(t *testing.T) {
	net := deployTestNetwork(t, 18, 4)
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	hs, err := PlanHetero(u, mixedPeriods(t, 18))
	if err != nil {
		t.Fatal(err)
	}
	if err := hs.CheckFeasible(); err != nil {
		t.Fatal(err)
	}
	if hs.Hyperperiod() != 12 {
		t.Errorf("hyperperiod = %d, want lcm(2,4,6)=12", hs.Hyperperiod())
	}
	avg := hs.AverageUtility(u.NewOracle, 4)
	if avg <= 0 || avg > 1 {
		t.Errorf("avg utility %v out of (0,1]", avg)
	}
}

func TestPlanHeteroValidation(t *testing.T) {
	net := deployTestNetwork(t, 4, 2)
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanHetero(nil, mixedPeriods(t, 4)); err == nil {
		t.Error("nil utility accepted")
	}
	if _, err := PlanHetero(u, mixedPeriods(t, 3)); err == nil {
		t.Error("period count mismatch accepted")
	}
	if _, err := PlanHeteroExact(nil, mixedPeriods(t, 4), 0); err == nil {
		t.Error("nil utility accepted by exact")
	}
	if _, err := PlanHeteroExact(u, mixedPeriods(t, 2), 0); err == nil {
		t.Error("period count mismatch accepted by exact")
	}
}

func TestPlanHeteroExactDominates(t *testing.T) {
	net := deployTestNetwork(t, 5, 2)
	u, err := NewDetectionUtility(net, FixedProb(0.5))
	if err != nil {
		t.Fatal(err)
	}
	periods := mixedPeriods(t, 5)
	greedy, err := PlanHetero(u, periods)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := PlanHeteroExact(u, periods, 0)
	if err != nil {
		t.Fatal(err)
	}
	gv := greedy.HyperperiodUtility(u.NewOracle)
	ev := exact.HyperperiodUtility(u.NewOracle)
	if gv > ev+1e-9 {
		t.Errorf("greedy %v exceeds exact %v", gv, ev)
	}
	if gv < ev/2-1e-9 {
		t.Errorf("greedy %v below half of exact %v", gv, ev)
	}
}

func TestNewOnlineGreedyPolicy(t *testing.T) {
	net := deployTestNetwork(t, 16, 4)
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	period := sunnyPeriod(t)
	pol := NewOnlineGreedyPolicy(u, period)
	if pol.Budget != 4 {
		t.Errorf("budget = %d, want ceil(16/4)=4", pol.Budget)
	}
	res, err := RunSimulation(SimConfig{
		NumSensors: 16,
		Slots:      32,
		Policy:     pol,
		Charging:   DeterministicCharging{Period: period},
		Factory:    NewInstanceOracleFactory(u),
		Targets:    4,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AverageUtility <= 0 {
		t.Error("online policy produced zero utility")
	}
	// The online policy with the matched budget tracks the offline
	// greedy schedule closely under deterministic charging.
	planner, err := NewPlanner(u, period)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := planner.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	offline, err := Simulate(planner, sched, 32, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.AverageUtility < 0.8*offline.AverageUtility {
		t.Errorf("online %v far below offline %v", res.AverageUtility, offline.AverageUtility)
	}
	if math.IsNaN(res.AverageUtility) {
		t.Error("NaN utility")
	}
}

func TestSimulateHeteroFacade(t *testing.T) {
	net := deployTestNetwork(t, 6, 2)
	u, err := NewDetectionUtility(net, FixedProb(0.5))
	if err != nil {
		t.Fatal(err)
	}
	periods := mixedPeriods(t, 6)
	hs, err := PlanHetero(u, periods)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimulateHetero(u, hs, periods, 2*hs.Hyperperiod(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActivationsDenied != 0 {
		t.Errorf("denied = %d", res.ActivationsDenied)
	}
	want := 2 * hs.HyperperiodUtility(u.NewOracle)
	if math.Abs(res.TotalUtility-want) > 1e-9 {
		t.Errorf("simulated %v != analytic %v", res.TotalUtility, want)
	}
	if _, err := SimulateHetero(nil, hs, periods, 4, 1, 1); err == nil {
		t.Error("nil utility accepted")
	}
}
