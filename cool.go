// Package cool is a Go implementation of "Cool: On Coverage with
// Solar-Powered Sensors" (Tang, Li, Shen, Zhang, Dai, Das — ICDCS
// 2011): dynamic node-activation scheduling for wireless sensor
// networks with solar-rechargeable batteries and submodular coverage
// utility.
//
// The library models networks of sensors with fixed sensing footprints
// monitoring targets or a weighted region, batteries that alternate
// between active (discharging), passive (recharging) and ready states
// with a short-horizon-stable charging period T = Tr + Td, and
// normalized non-decreasing submodular utility functions over the
// active set of each time-slot. Its scheduling algorithms compute
// periodic activation schedules:
//
//   - Greedy / LazyGreedy — the paper's greedy hill-climbing scheme
//     (Algorithm 1 for ρ ≥ 1, the passive-slot removal form for
//     ρ ≤ 1), with a proven 1/2-approximation of the optimal average
//     utility.
//   - Exact — branch-and-bound optimum for small instances, the
//     evaluation's enumeration yardstick.
//   - LPRound — the LP-relaxation + randomized-rounding baseline for
//     weighted-coverage utilities.
//   - Baselines — random, round-robin, first-slot, sorted-stride.
//
// Around the scheduler it provides the full evaluation substrate of the
// paper: a solar-harvesting simulator (light → panel current → battery
// voltage) with per-weather charging patterns, charging-pattern
// estimation from voltage traces, a slotted network simulator with
// deterministic and stochastic (Section V) charging and fault
// injection, and a packet-level protocol stack (slot sync, schedule
// dissemination, convergecast collection).
//
// Entry points: build a Network (Deploy or NewNetwork), derive a
// Utility (NewDetectionUtility, NewAreaUtility, NewTargetCountUtility
// or WrapFunction), create a Planner with a Period (PeriodFromRho or
// PeriodFromTimes), and call one of its scheduling methods. Simulate
// executes a schedule under an energy model; see the examples/
// directory for complete programs.
package cool

import (
	"time"

	"cool/internal/core"
	"cool/internal/energy"
	"cool/internal/geometry"
	"cool/internal/submodular"
)

// Version is the library version.
const Version = "1.0.0"

// Re-exported core types. Aliases keep one set of method docs while
// letting users stay entirely within this package.
type (
	// Schedule is a periodic activation schedule (see internal/core).
	Schedule = core.Schedule
	// Mode distinguishes placement (ρ ≥ 1) and removal (ρ ≤ 1)
	// schedule semantics.
	Mode = core.Mode
	// Period is a normalized charging period T = Tr + Td in slots.
	Period = energy.Period
	// Pattern is an estimated (Tr, Td) charging pattern.
	Pattern = energy.Pattern
	// Point is a 2-D location.
	Point = geometry.Point
	// Rect is an axis-aligned rectangle (deployment fields, Ω).
	Rect = geometry.Rect
	// Disk is the classical omnidirectional sensing footprint.
	Disk = geometry.Disk
	// Sector is a directional sensing footprint.
	Sector = geometry.Sector
	// Region is an arbitrary sensing footprint.
	Region = geometry.Region
	// Function is a set function over sensor indices; utilities must be
	// normalized, non-decreasing and submodular.
	Function = submodular.Function
	// Oracle evaluates a utility incrementally.
	Oracle = submodular.Oracle
	// RemovalOracle additionally supports deletions (needed for ρ ≤ 1).
	RemovalOracle = submodular.RemovalOracle
)

// Schedule mode constants.
const (
	// ModePlacement is the ρ ≥ 1 regime (one active slot per period).
	ModePlacement = core.ModePlacement
	// ModeRemoval is the ρ ≤ 1 regime (one passive slot per period).
	ModeRemoval = core.ModeRemoval
)

// PeriodFromRho normalizes a charging ratio ρ = Tr/Td into a period.
// ρ (or 1/ρ) must be integral, per the paper's simplification.
func PeriodFromRho(rho float64) (Period, error) {
	return energy.PeriodFromRho(rho)
}

// PeriodFromTimes normalizes measured recharge and discharge durations
// (e.g. 45 and 15 minutes on the paper's sunny testbed) into a period
// and the slot length.
func PeriodFromTimes(recharge, discharge time.Duration) (Period, time.Duration, error) {
	return energy.PeriodFromTimes(recharge, discharge)
}

// CheckSubmodular exhaustively verifies that a user-supplied utility is
// normalized, non-decreasing and submodular on a small ground set
// (≤ 12 sensors). The greedy guarantee (Lemma 4.1) requires these
// properties; run this on scaled-down instances of custom utilities.
func CheckSubmodular(fn Function) error {
	if err := submodular.IsNormalized(fn, 1e-9); err != nil {
		return err
	}
	if err := submodular.IsMonotone(fn, 1e-9); err != nil {
		return err
	}
	return submodular.IsSubmodular(fn, 1e-9)
}
