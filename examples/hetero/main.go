// Heterogeneous fleet: the paper's second future-work item. Half the
// motes carry two solar panels (recharge ~2x faster => smaller ρ), and
// some sit in partial shade (slower). The heterogeneous greedy assigns
// each sensor an activation offset within its own charging period over
// the hyperperiod, exploiting fast chargers' extra active slots —
// something the homogeneous scheduler must forfeit by assuming the
// worst-case period for everyone.
package main

import (
	"fmt"
	"log"

	"cool"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		sensors = 30
		targets = 6
	)
	network, err := cool.Deploy(cool.DeployConfig{
		Field:   cool.NewField(300),
		Sensors: sensors,
		Targets: targets,
		Range:   90,
	}, 17)
	if err != nil {
		return err
	}
	utility, err := cool.NewDetectionUtility(network, cool.FixedProb(0.4))
	if err != nil {
		return err
	}

	// Mixed fleet: every third mote has two panels (rho=1), shaded
	// motes (every fifth) recharge slowly (rho=5), the rest are the
	// standard sunny rho=3.
	periods := make([]cool.Period, sensors)
	counts := map[string]int{}
	for i := range periods {
		rho := 3.0
		kind := "standard (rho=3)"
		switch {
		case i%3 == 0:
			rho, kind = 1, "two-panel (rho=1)"
		case i%5 == 0:
			rho, kind = 5, "shaded (rho=5)"
		}
		p, err := cool.PeriodFromRho(rho)
		if err != nil {
			return err
		}
		periods[i] = p
		counts[kind]++
	}
	for kind, c := range map[string]int{
		"two-panel (rho=1)": counts["two-panel (rho=1)"],
		"standard (rho=3)":  counts["standard (rho=3)"],
		"shaded (rho=5)":    counts["shaded (rho=5)"],
	} {
		fmt.Printf("%2d motes %s\n", c, kind)
	}

	hetero, err := cool.PlanHetero(utility, periods)
	if err != nil {
		return err
	}
	heteroAvg := hetero.AverageUtility(utility.NewOracle, targets)
	fmt.Printf("\nheterogeneous greedy: hyperperiod %d slots, avg utility %.4f\n",
		hetero.Hyperperiod(), heteroAvg)

	// The homogeneous alternative must assume every sensor has the
	// worst (slowest) pattern in the fleet.
	worst, err := cool.PeriodFromRho(5)
	if err != nil {
		return err
	}
	planner, err := cool.NewPlanner(utility, worst)
	if err != nil {
		return err
	}
	homo, err := planner.Greedy()
	if err != nil {
		return err
	}
	homoAvg := planner.AverageUtility(homo, targets)
	fmt.Printf("homogeneous greedy (worst-case rho=5 for all): avg utility %.4f\n", homoAvg)
	fmt.Printf("heterogeneity-aware gain: %+.1f%%\n", 100*(heteroAvg/homoAvg-1))

	// Execute the heterogeneous schedule on the simulator with
	// per-sensor charging: the analytic hyperperiod utility reproduces
	// exactly and no scheduled activation is denied.
	result, err := cool.SimulateHetero(
		utility, hetero, periods, 4*hetero.Hyperperiod(), targets, 3)
	if err != nil {
		return err
	}
	fmt.Printf("simulated %d slots: avg utility %.4f, denied activations %d\n",
		4*hetero.Hyperperiod(), result.AverageUtility, result.ActivationsDenied)
	return nil
}
