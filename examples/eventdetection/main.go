// Event detection under the paper's Section-V random charging model:
// events arrive at active sensors as a Poisson process and drain the
// battery only while being monitored, while recharge times fluctuate
// around the estimated pattern. The example compares the greedy
// schedule against round-robin and the naive all-ready policy across
// event loads.
package main

import (
	"fmt"
	"log"

	"cool"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		sensors = 60
		targets = 8
		days    = 5
	)
	network, err := cool.Deploy(cool.DeployConfig{
		Field:   cool.NewField(300),
		Sensors: sensors,
		Targets: targets,
		Range:   90,
	}, 23)
	if err != nil {
		return err
	}
	// Detection quality decays with distance: a sensor right on top of
	// the target detects with probability 0.9, one at the edge of its
	// range barely at all.
	utility, err := cool.NewDetectionUtility(network, cool.DistanceDecay{PMax: 0.9, Gamma: 1})
	if err != nil {
		return err
	}
	period, err := cool.PeriodFromRho(3)
	if err != nil {
		return err
	}
	planner, err := cool.NewPlanner(utility, period)
	if err != nil {
		return err
	}

	greedy, err := planner.LazyGreedy()
	if err != nil {
		return err
	}
	roundRobin, err := planner.Baseline("round-robin", 1)
	if err != nil {
		return err
	}

	policies := []struct {
		name string
		pol  cool.Policy
	}{
		{"greedy", cool.SchedulePolicy{Schedule: greedy}},
		{"round-robin", cool.SchedulePolicy{Schedule: roundRobin}},
		{"all-ready", cool.AllReadyPolicy{}},
	}

	runOnce := func(pol cool.Policy, charging cool.SimConfig) (*cool.SimResult, error) {
		cfg := charging
		cfg.NumSensors = sensors
		cfg.Slots = days * 48
		cfg.Policy = pol
		cfg.Factory = cool.NewInstanceOracleFactory(utility)
		cfg.Targets = targets
		cfg.Seed = 99
		return cool.RunSimulation(cfg)
	}

	fmt.Println("deterministic charging (the paper's base model):")
	fmt.Println("policy        avg-utility   denied")
	for _, p := range policies {
		result, err := runOnce(p.pol, cool.SimConfig{
			Charging: cool.DeterministicCharging{Period: period},
		})
		if err != nil {
			return err
		}
		fmt.Printf("%-13s %11.4f   %6d\n", p.name, result.AverageUtility, result.ActivationsDenied)
	}

	fmt.Println("\nrandom charging (Section V: Poisson events, jittered recharge):")
	fmt.Println("policy        event-load   avg-utility   denied")
	for _, p := range policies {
		for _, load := range []float64{0.25, 1, 4} {
			result, err := runOnce(p.pol, cool.SimConfig{
				Charging: cool.RandomCharging{
					Period:        period,
					EventRate:     load,
					EventDuration: 1,
				},
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-13s %10.2f   %11.4f   %6d\n",
				p.name, load, result.AverageUtility, result.ActivationsDenied)
		}
	}
	fmt.Println(`
reading the numbers:
  - under the deterministic model the greedy schedule dominates and
    all-ready wastes the fleet on the first slot of every period;
  - under random charging, batteries drain only while monitoring
    events, so at light loads staying always-on is nearly free and
    all-ready pulls ahead — scheduling rigidly around a worst-case
    drain forfeits that slack (the paper flags the greedy extension to
    this model as future work);
  - as the event load saturates, the models converge and the denied
    count shows the rigid schedule missing jittered recharges.`)
	return nil
}
