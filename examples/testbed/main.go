// Testbed pipeline: the full loop the paper's rooftop deployment ran.
//
//  1. Measure: simulate a day of solar charging traces for the fleet
//     and estimate the (Tr, Td) charging pattern per 2-hour window.
//  2. Plan: build the greedy activation schedule for the estimated
//     period.
//  3. Disseminate: flood the schedule from the base station over the
//     lossy multihop radio network and wait for every node's ack.
//  4. Collect: nodes report their readings up the convergecast tree to
//     the base station.
package main

import (
	"fmt"
	"log"
	"time"

	"cool"
	"cool/internal/netsim"
	"cool/internal/protocol"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		sensors = 36
		targets = 6
	)

	// --- 1. Measure the charging pattern -------------------------------
	records, err := cool.MeasureCampaign(cool.CampaignConfig{
		Nodes:    3,
		Days:     []cool.Weather{cool.WeatherSunny},
		Interval: time.Minute,
		Seed:     5,
	})
	if err != nil {
		return err
	}
	patterns, err := cool.EstimatePatterns(records[:len(records)/3], 2*time.Hour)
	if err != nil {
		return err
	}
	best := patterns[len(patterns)/2]
	fmt.Printf("estimated charging pattern: Tr=%v Td=%v (rho=%.2f)\n",
		best.Recharge.Round(time.Minute), best.Discharge.Round(time.Minute), best.Rho())
	period, err := best.Period()
	if err != nil {
		return err
	}
	fmt.Printf("normalized period: T=%d slots\n", period.Slots())

	// --- 2. Plan the activation schedule -------------------------------
	network, err := cool.Deploy(cool.DeployConfig{
		Field:   cool.NewField(120),
		Sensors: sensors,
		Targets: targets,
		Range:   40,
		Layout:  cool.LayoutGrid,
	}, 8)
	if err != nil {
		return err
	}
	utility, err := cool.NewDetectionUtility(network, cool.FixedProb(0.4))
	if err != nil {
		return err
	}
	planner, err := cool.NewPlanner(utility, period)
	if err != nil {
		return err
	}
	schedule, err := planner.Greedy()
	if err != nil {
		return err
	}
	fmt.Printf("planned schedule: avg utility %.4f per target per slot\n",
		planner.AverageUtility(schedule, targets))

	// --- 3. Disseminate over the lossy radio network --------------------
	radio, err := netsim.NewNetwork(netsim.WithLoss(0.2), netsim.WithSeed(13))
	if err != nil {
		return err
	}
	// Base station at the field corner, then the sensor fleet, all
	// registered in one bulk call. Radio range 45 keeps the grid
	// multihop but connected.
	specs := make([]netsim.NodeSpec, 0, sensors+1)
	specs = append(specs, netsim.NodeSpec{ID: protocol.BaseID, Pos: cool.Point{X: 0, Y: 0}, Radio: 45})
	for _, s := range network.Sensors() {
		specs = append(specs, netsim.NodeSpec{ID: netsim.NodeID(s.ID + 1), Pos: s.Pos, Radio: 45})
	}
	if err := radio.AddNodes(specs); err != nil {
		return err
	}
	if !radio.Connected() {
		return fmt.Errorf("radio network is not connected")
	}
	engine, err := protocol.NewEngine(protocol.Config{}, radio)
	if err != nil {
		return err
	}
	for id := netsim.NodeID(0); id <= sensors; id++ {
		if err := engine.Register(id); err != nil {
			return err
		}
	}
	if err := engine.Distribute(protocol.ScheduleMsg{
		Version: 1,
		Assign:  schedule.Assignment(),
		Period:  schedule.Period(),
		Removal: schedule.Mode() == cool.ModeRemoval,
	}); err != nil {
		return err
	}
	ticks, ok, err := engine.RunUntil(engine.AllAcked, 5000)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("dissemination incomplete: %d acks", engine.AckedCount())
	}
	sent, delivered, dropped := radio.Stats()
	fmt.Printf("schedule disseminated to %d nodes in %d ticks over 20%%-lossy links\n", sensors, ticks)
	fmt.Printf("radio: %d sent, %d delivered, %d dropped\n", sent, delivered, dropped)

	// --- 4. Collect readings at the base -------------------------------
	for id := netsim.NodeID(1); id <= sensors; id++ {
		if err := engine.Report(id, 0, float64(id)*1.5); err != nil {
			return err
		}
	}
	_, ok, err = engine.RunUntil(func() bool {
		return len(engine.Collected()) >= sensors
	}, 5000)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("collection incomplete: %d reports", len(engine.Collected()))
	}
	fmt.Printf("base station collected %d reports via convergecast\n", len(engine.Collected()))

	// --- Execute the schedule for a day ---------------------------------
	result, err := cool.Simulate(planner, schedule, 12*period.Slots(), targets, 3)
	if err != nil {
		return err
	}
	fmt.Printf("one simulated day: avg utility %.4f, denied activations %d\n",
		result.AverageUtility, result.ActivationsDenied)
	return nil
}
