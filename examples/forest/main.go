// Forest monitoring: the paper's motivating application. Sensors are
// scattered over a forest region Ω; the utility is the weighted area
// covered per slot (Equation 2), with a riparian strip weighted three
// times higher than the rest of the forest. The example replans the
// schedule each day as the weather (and hence the charging ratio ρ)
// changes, switching between the placement (ρ > 1) and removal (ρ ≤ 1)
// forms of the greedy scheme.
package main

import (
	"fmt"
	"log"

	"cool"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// weatherRho maps each day's weather to a normalized charging ratio.
// Sunny days recharge three times faster than nodes drain relative to
// the slot length chosen per weather; a hypothetical "super capacitor"
// deployment even reaches ρ = 1/2 when panels outpace the load.
var week = []struct {
	day     string
	weather cool.Weather
	rho     float64
}{
	{"monday", cool.WeatherSunny, 3},
	{"tuesday", cool.WeatherSunny, 3},
	{"wednesday", cool.WeatherPartlyCloudy, 5},
	{"thursday", cool.WeatherOvercast, 9},
	{"friday", cool.WeatherPartlyCloudy, 5},
	{"saturday", cool.WeatherSunny, 3},
	{"sunday", cool.WeatherSunny, 1},
}

func run() error {
	const fieldSide = 400
	network, err := cool.Deploy(cool.DeployConfig{
		Field:   cool.NewField(fieldSide),
		Sensors: 80,
		Targets: 0, // region coverage, no point targets
		Range:   55,
		Layout:  cool.LayoutClustered,
	}, 11)
	if err != nil {
		return err
	}

	// Weighted preference over Ω: the riparian strip along the river
	// (y in [150, 250]) matters three times as much.
	riparian := func(p cool.Point) float64 {
		if p.Y >= 150 && p.Y <= 250 {
			return 3
		}
		return 1
	}
	utility, err := cool.NewAreaUtility(network, cool.NewField(fieldSide), 250, riparian)
	if err != nil {
		return err
	}

	fmt.Println("day        weather         rho  mode       avg-weighted-area")
	var weekTotal float64
	for _, d := range week {
		period, err := cool.PeriodFromRho(d.rho)
		if err != nil {
			return err
		}
		planner, err := cool.NewPlanner(utility, period)
		if err != nil {
			return err
		}
		schedule, err := planner.Greedy()
		if err != nil {
			return err
		}
		// 12-hour day; slot length varies with the weather's pattern but
		// the slot count per day stays a multiple of the period.
		slots := 12 * period.Slots()
		result, err := cool.Simulate(planner, schedule, slots, 1, 3)
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %-15v %4.2f  %-9v  %14.1f\n",
			d.day, d.weather, d.rho, schedule.Mode(), result.AverageUtility)
		weekTotal += result.TotalUtility
	}
	fmt.Printf("week total weighted-area-slots: %.1f\n", weekTotal)

	// How much of the forest can the full fleet see at once?
	sub, err := cool.Subregions(network, cool.NewField(fieldSide), 250)
	if err != nil {
		return err
	}
	fmt.Printf("subregions: %d, covered area with all sensors on: %.1f of %.1f\n",
		len(sub.Cells), sub.CoveredArea(), float64(fieldSide*fieldSide))
	return nil
}
