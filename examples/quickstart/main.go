// Quickstart: deploy a small solar-powered sensor network, compute the
// paper's greedy hill-climbing activation schedule, and simulate one
// working day.
package main

import (
	"fmt"
	"log"

	"cool"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Deploy 20 sensors and 3 targets in a 200x200 field.
	network, err := cool.Deploy(cool.DeployConfig{
		Field:   cool.NewField(200),
		Sensors: 20,
		Targets: 3,
		Range:   60,
	}, 7 /* seed */)
	if err != nil {
		return err
	}

	// 2. Each covering sensor detects an event with probability 0.4
	// (the paper's evaluation setting); the per-slot utility is the
	// probability that an event at each target is detected.
	utility, err := cool.NewDetectionUtility(network, cool.FixedProb(0.4))
	if err != nil {
		return err
	}

	// 3. Sunny-weather charging pattern: Tr = 45 min, Td = 15 min, so
	// rho = 3 and the period is T = 4 slots of 15 minutes.
	period, err := cool.PeriodFromRho(3)
	if err != nil {
		return err
	}

	// 4. Plan with the greedy hill-climbing scheme: at least 1/2 of the
	// optimal average utility, by Lemma 4.1 of the paper.
	planner, err := cool.NewPlanner(utility, period)
	if err != nil {
		return err
	}
	schedule, err := planner.Greedy()
	if err != nil {
		return err
	}

	fmt.Printf("schedule period: %d slots, sensors per slot: %v\n",
		schedule.Period(), schedule.SlotSizes())
	fmt.Printf("average utility per target per slot: %.4f\n",
		planner.AverageUtility(schedule, network.NumTargets()))
	lower, upper, err := planner.Bracket()
	if err != nil {
		return err
	}
	fmt.Printf("optimal period utility is within [%.4f, %.4f]\n", lower, upper)

	// 5. Simulate one 12-hour working day (48 slots of 15 minutes)
	// under deterministic charging.
	result, err := cool.Simulate(planner, schedule, 48, network.NumTargets(), 1)
	if err != nil {
		return err
	}
	fmt.Printf("simulated day: total utility %.4f, average %.4f, denied activations %d\n",
		result.TotalUtility, result.AverageUtility, result.ActivationsDenied)
	return nil
}
