package cool_test

import (
	"os/exec"
	"testing"
)

// TestExamplesRun executes every example program end-to-end — the
// examples double as integration tests of the public API. Skipped in
// -short mode (each takes up to a few seconds).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	examples := []string{
		"./examples/quickstart",
		"./examples/forest",
		"./examples/eventdetection",
		"./examples/testbed",
		"./examples/hetero",
	}
	for _, dir := range examples {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", dir)
			}
		})
	}
}
