package cool

import (
	"errors"
	"fmt"

	"cool/internal/lifetime"
	"cool/internal/solar"
)

// Lifetime objective: instead of maximizing per-period utility, keep
// the field covered for as many consecutive slots as possible under
// per-sensor battery budgets (the Restricted Strip Covering / Sensor
// Cover view of the same fleet). These aliases re-export the
// internal/lifetime vocabulary so callers stay within this package.
type (
	// LifetimeInstance is a coverage-lifetime problem: targets with
	// coverer lists, battery budgets and a harvesting envelope.
	LifetimeInstance = lifetime.Instance
	// LifetimeTarget is one target and the sensors that cover it.
	LifetimeTarget = lifetime.Target
	// LifetimeSchedule is a finite per-slot activation schedule.
	LifetimeSchedule = lifetime.Schedule
	// LifetimeResult is a schedule with its verified coverage lifetime.
	LifetimeResult = lifetime.Result
	// LifetimeExactOptions tunes the exhaustive lifetime reference.
	LifetimeExactOptions = lifetime.ExactOptions
)

// LifetimeOptions configures the lifetime objective of Planner.Plan.
// The coverage structure (which sensors cover which targets) always
// comes from the planner's utility, which must be one of the
// weighted-coverage families (NewTargetCountUtility, NewAreaUtility or
// NewCoverageUtility); the probabilistic detection utility has no
// binary coverage semantics and is rejected.
//
// The zero value is usable: every field has a documented default.
type LifetimeOptions struct {
	// Horizon is the number of slots to survive (default: 4 charging
	// periods, 4·Period.Slots()).
	Horizon int
	// K requires every target to be covered by at least K active
	// sensors per slot (default 1).
	K int
	// Threshold is the fraction of targets that must meet their
	// k-requirement for a slot to count as covered (default 1: all).
	Threshold float64
	// Initial, Capacity and Recharge are per-sensor battery budgets in
	// active-slot units: an active slot costs 1, a rest slot harvests
	// Recharge[i] scaled by the weather envelope. Defaults: Capacity 1,
	// Initial full, and Recharge 1/ρ — the planner's charging ratio
	// says a sensor needs ρ rest slots to fund one active slot, so its
	// homogeneous per-slot harvest is 1/ρ. Pass an explicit Recharge
	// vector for heterogeneous per-sensor ρ.
	Initial, Capacity, Recharge []float64
	// Scale is the per-slot harvesting envelope, tiled over the
	// horizon (default all 1). Zero entries are adversarial dead
	// streaks. Mutually exclusive with Weather.
	Scale []float64
	// Weather derives the envelope from a weather sequence instead
	// (one class per slot, e.g. a WeatherSequence draw): each class
	// maps to its mean irradiance relative to sunny, so WeatherRain
	// slots are ~0.04 — an adversarial streak. Mutually exclusive with
	// Scale.
	Weather []Weather
	// MaxNodes bounds the exhaustive reference search when Algorithm
	// is AlgorithmLifetimeExact (0 = default).
	MaxNodes int64
}

// NewLifetimeSchedule builds a lifetime schedule from per-slot active
// sets (validated, copied, sorted).
func NewLifetimeSchedule(n int, slots [][]int) (*LifetimeSchedule, error) {
	return lifetime.NewSchedule(n, slots)
}

// WeatherHarvestScale maps a weather sequence to the per-slot
// harvesting envelope of the lifetime model: each class's mean
// irradiance relative to a sunny slot.
func WeatherHarvestScale(weather []Weather) ([]float64, error) {
	if len(weather) == 0 {
		return nil, errors.New("cool: empty weather sequence")
	}
	scale := make([]float64, len(weather))
	for i, w := range weather {
		s, err := solar.HarvestScale(w)
		if err != nil {
			return nil, err
		}
		scale[i] = s
	}
	return scale, nil
}

// InjectWeatherStreak returns a copy of the sequence with slots
// [start, start+length) overwritten by the given class — the
// adversarial-streak generator used by the lifetime scenarios (inject
// WeatherRain into a WeatherSequence draw to starve harvesting).
func InjectWeatherStreak(seq []Weather, start, length int, w Weather) ([]Weather, error) {
	if start < 0 || length < 0 || start+length > len(seq) {
		return nil, fmt.Errorf("cool: streak [%d,%d) outside sequence of %d", start, start+length, len(seq))
	}
	out := append([]Weather(nil), seq...)
	for i := start; i < start+length; i++ {
		out[i] = w
	}
	return out, nil
}

// lifetimeInstance compiles the planner's coverage structure and the
// options into a lifetime.Instance.
func (p *Planner) lifetimeInstance(opts *LifetimeOptions) (*LifetimeInstance, error) {
	if opts == nil {
		opts = &LifetimeOptions{}
	}
	cov, ok := utilityAsLinearizable(p.utility)
	if !ok {
		return nil, errors.New("cool: lifetime objective requires a weighted-coverage utility (target-count, area or coverage)")
	}
	items := cov.Items()
	targets := make([]LifetimeTarget, len(items))
	for j, it := range items {
		targets[j] = LifetimeTarget{Covers: append([]int(nil), it.CoveredBy...)}
	}
	horizon := opts.Horizon
	if horizon == 0 {
		horizon = 4 * p.period.Slots()
	}
	scale := opts.Scale
	if len(opts.Weather) > 0 {
		if len(scale) > 0 {
			return nil, errors.New("cool: LifetimeOptions.Scale and Weather are mutually exclusive")
		}
		var err error
		scale, err = WeatherHarvestScale(opts.Weather)
		if err != nil {
			return nil, err
		}
	}
	recharge := opts.Recharge
	if recharge == nil {
		// One active slot costs ρ rest slots of harvesting.
		rho := p.period.Rho()
		recharge = make([]float64, p.inst.N)
		for i := range recharge {
			recharge[i] = 1 / rho
		}
	}
	in := &LifetimeInstance{
		N:         p.inst.N,
		Targets:   targets,
		K:         opts.K,
		Threshold: opts.Threshold,
		Horizon:   horizon,
		Initial:   opts.Initial,
		Capacity:  opts.Capacity,
		Recharge:  recharge,
		Scale:     scale,
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// PlanLifetime computes a lifetime schedule with the given algorithm
// (AlgorithmHEF, AlgorithmStripCover or AlgorithmLifetimeExact;
// "" = HEF). It is the lifetime half of Planner.Plan, exposed directly
// for callers that only ever plan lifetimes.
func (p *Planner) PlanLifetime(alg Algorithm, opts *LifetimeOptions) (*LifetimeResult, error) {
	in, err := p.lifetimeInstance(opts)
	if err != nil {
		return nil, err
	}
	var res *LifetimeResult
	switch alg {
	case "", AlgorithmHEF:
		res, err = lifetime.HEF(in)
	case AlgorithmStripCover:
		res, err = lifetime.StripCover(in)
	case AlgorithmLifetimeExact:
		var maxNodes int64
		if opts != nil {
			maxNodes = opts.MaxNodes
		}
		res, err = lifetime.Exact(in, lifetime.ExactOptions{MaxNodes: maxNodes})
	default:
		return nil, fmt.Errorf("cool: algorithm %q does not plan the lifetime objective", alg)
	}
	if err != nil {
		return nil, err
	}
	// Every lifetime planner's output is re-verified against the
	// independent feasibility checker before it leaves the facade.
	if err := in.Verify(res); err != nil {
		return nil, fmt.Errorf("cool: %s produced an invalid schedule: %w", res.Algorithm, err)
	}
	return res, nil
}

// LifetimeOf evaluates the verified coverage lifetime of an arbitrary
// lifetime schedule under the planner's coverage structure and the
// given options (battery feasibility is checked first).
func (p *Planner) LifetimeOf(s *LifetimeSchedule, opts *LifetimeOptions) (int, error) {
	in, err := p.lifetimeInstance(opts)
	if err != nil {
		return 0, err
	}
	if err := in.CheckBatteryFeasible(s); err != nil {
		return 0, err
	}
	return in.Lifetime(s), nil
}
