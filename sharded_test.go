package cool

import (
	"testing"
)

// shardedTestNetwork deploys a uniform field wide enough for real cuts.
func shardedTestNetwork(t *testing.T, n, m int) *Network {
	t.Helper()
	net, err := Deploy(DeployConfig{
		Sensors: n, Targets: m,
		Field:  NewField(400),
		Range:  18,
		Layout: LayoutUniform,
	}, 12345)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// TestShardedPlanK1Identity pins the facade's k = 1 contract against
// Planner.Greedy for both utility families and both modes.
func TestShardedPlanK1Identity(t *testing.T) {
	net := shardedTestNetwork(t, 150, 75)
	for _, period := range []Period{{ActiveSlots: 1, PassiveSlots: 3}, {ActiveSlots: 3, PassiveSlots: 1}} {
		res, err := ShardedDetectionPlan(net, FixedProb(0.4), period, ShardedOptions{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		u, err := NewDetectionUtility(net, FixedProb(0.4))
		if err != nil {
			t.Fatal(err)
		}
		pl, err := NewPlanner(u, period)
		if err != nil {
			t.Fatal(err)
		}
		want, err := pl.Greedy()
		if err != nil {
			t.Fatal(err)
		}
		got, exp := res.Schedule.Assignment(), want.Assignment()
		for v := range exp {
			if got[v] != exp[v] {
				t.Fatalf("period %+v: sensor %d sharded slot %d != greedy %d", period, v, got[v], exp[v])
			}
		}
		if res.Utility != pl.PeriodUtility(want) {
			t.Fatalf("period %+v: k=1 utility %v != planner %v", period, res.Utility, pl.PeriodUtility(want))
		}

		cres, err := ShardedTargetCountPlan(net, period, ShardedOptions{Shards: 1, Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		cu, err := NewTargetCountUtility(net)
		if err != nil {
			t.Fatal(err)
		}
		cpl, err := NewPlanner(cu, period)
		if err != nil {
			t.Fatal(err)
		}
		cwant, err := cpl.LazyGreedy()
		if err != nil {
			t.Fatal(err)
		}
		cgot, cexp := cres.Schedule.Assignment(), cwant.Assignment()
		for v := range cexp {
			if cgot[v] != cexp[v] {
				t.Fatalf("period %+v: count sensor %d sharded slot %d != lazy %d", period, v, cgot[v], cexp[v])
			}
		}
	}
}

// TestShardedPlanDecomposition runs a real decomposition through the
// facade: feasibility, a small gap against the global greedy, and the
// decomposition accounting.
func TestShardedPlanDecomposition(t *testing.T) {
	net := shardedTestNetwork(t, 400, 200)
	period := Period{ActiveSlots: 1, PassiveSlots: 2}
	res, err := ShardedDetectionPlan(net, FixedProb(0.4), period, ShardedOptions{Shards: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveShards < 2 {
		t.Fatalf("decomposition collapsed to %d shards", res.EffectiveShards)
	}
	if err := res.Schedule.CheckFeasible(period); err != nil {
		t.Fatal(err)
	}
	if res.Interior+res.Halo != net.NumSensors() {
		t.Fatalf("interior %d + halo %d != n %d", res.Interior, res.Halo, net.NumSensors())
	}
	u, err := NewDetectionUtility(net, FixedProb(0.4))
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewPlanner(u, period)
	if err != nil {
		t.Fatal(err)
	}
	global, err := pl.Greedy()
	if err != nil {
		t.Fatal(err)
	}
	gu := pl.PeriodUtility(global)
	if gap := (gu - res.Utility) / gu; gap > 0.05 {
		t.Fatalf("utility gap %.2f%% vs global greedy (%v vs %v)", 100*gap, res.Utility, gu)
	}
	if res.Utility < res.UtilityBefore-1e-9 {
		t.Fatalf("sweep lost utility: %v -> %v", res.UtilityBefore, res.Utility)
	}

	// Requested counts beyond the geometry degrade gracefully.
	big, err := ShardedTargetCountPlan(net, period, ShardedOptions{Shards: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if big.EffectiveShards > net.NumSensors() {
		t.Fatalf("effective shards %d beyond n", big.EffectiveShards)
	}
	if err := big.Schedule.CheckFeasible(period); err != nil {
		t.Fatal(err)
	}
}

// TestShardedPlanValidation covers the facade error paths.
func TestShardedPlanValidation(t *testing.T) {
	net := shardedTestNetwork(t, 30, 15)
	period := Period{ActiveSlots: 1, PassiveSlots: 2}
	if _, err := ShardedDetectionPlan(nil, FixedProb(0.4), period, ShardedOptions{}); err == nil {
		t.Fatal("nil network accepted")
	}
	if _, err := ShardedDetectionPlan(net, nil, period, ShardedOptions{}); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := ShardedTargetCountPlan(net, Period{}, ShardedOptions{}); err == nil {
		t.Fatal("invalid period accepted")
	}
}
