package cool

import (
	"cool/internal/geometry"
	"cool/internal/stats"
	"cool/internal/wsn"
)

// Network re-exports the deployment model: sensors with sensing
// footprints, targets, and the coverage relation V(O_i).
type (
	// Network is an immutable sensor/target deployment.
	Network = wsn.Network
	// Sensor is one node with position and sensing footprint.
	Sensor = wsn.Sensor
	// Target is one monitored object with a preference weight.
	Target = wsn.Target
	// DeployConfig describes a synthetic deployment.
	DeployConfig = wsn.DeployConfig
	// Layout selects the sensor placement pattern.
	Layout = wsn.Layout
	// DetectionModel maps (sensor, target) to a detection probability.
	DetectionModel = wsn.DetectionModel
	// FixedProb detects with the same probability everywhere (the
	// paper's evaluation uses 0.4).
	FixedProb = wsn.FixedProb
	// DistanceDecay degrades detection probability with distance.
	DistanceDecay = wsn.DistanceDecay
)

// Deployment layouts.
const (
	// LayoutUniform scatters sensors uniformly (the paper's Figure-9
	// deployments).
	LayoutUniform = wsn.LayoutUniform
	// LayoutGrid places sensors on a regular grid.
	LayoutGrid = wsn.LayoutGrid
	// LayoutClustered samples sensors from Gaussian clusters.
	LayoutClustered = wsn.LayoutClustered
)

// NewNetwork validates an explicit deployment and precomputes the
// coverage relation. Sensor and target IDs must be ordinal.
func NewNetwork(sensors []Sensor, targets []Target) (*Network, error) {
	return wsn.NewNetwork(sensors, targets)
}

// Deploy generates a random deployment. Randomness is fully determined
// by seed.
func Deploy(cfg DeployConfig, seed uint64) (*Network, error) {
	return wsn.Deploy(cfg, stats.NewRNG(seed))
}

// AllCoverNetwork builds the paper's Figure-8 workload: n sensors that
// all cover each of m co-located targets.
func AllCoverNetwork(n, m int) (*Network, error) {
	return wsn.AllCoverNetwork(n, m)
}

// NewField is shorthand for the square deployment field
// [0, side] × [0, side].
func NewField(side float64) Rect {
	return geometry.NewRect(geometry.Point{}, geometry.Point{X: side, Y: side})
}
